package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// PriorityRow reports the prototype RPC's latency under heavy
// cross-traffic for one topology and queueing discipline.
type PriorityRow struct {
	Topology   string
	Discipline string // "fifo" or "priority"
	// RTTUs is the mean RPC round trip in µs.
	RTTUs float64
}

// PriorityComparison puts DeTail-style priority queueing (§2.1.4)
// against the architectural fix: the §6 prototype cross-traffic
// experiment at 3x200 Mb/s, with the RPC either sharing FIFO queues
// with the bulk traffic or riding a strict high-priority class.
//
// Priorities rescue the tree's RPC from queueing — but cannot remove
// the extra hop or help the bulk traffic itself, while the Quartz mesh
// needs no packet classification at all: its per-pair channels keep
// the RPC isolated under FIFO.
func PriorityComparison(seed int64, rpcs int) ([]PriorityRow, error) {
	var rows []PriorityRow
	for _, quartz := range []bool{false, true} {
		name := "two-tier tree"
		if quartz {
			name = "quartz mesh"
		}
		for _, prio := range []bool{false, true} {
			disc := "fifo"
			if prio {
				disc = "priority"
			}
			rtt, err := runPriorityCase(quartz, prio, rpcs, seed)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, disc, err)
			}
			rows = append(rows, PriorityRow{Topology: name, Discipline: disc, RTTUs: rtt})
		}
	}
	return rows, nil
}

func runPriorityCase(quartz, prioritize bool, rpcs int, seed int64) (float64, error) {
	g, hosts, _, err := prototype(quartz)
	if err != nil {
		return 0, err
	}
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: prototypeSwitch,
		Host:        netsim.HostModel{NICLatency: 10 * sim.Microsecond, ForwardLatency: 15 * sim.Microsecond, BufferBytes: 1 << 20},
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return 0, err
	}
	rpc := &traffic.RPC{
		Net: net, Harness: h,
		Client: hosts[0], Server: hosts[2],
		Count: rpcs, ReqTag: 1, ReplyTag: 2,
	}
	if prioritize {
		rpc.Priority = 0
		rpc.BackgroundPriority = 1
	} else {
		rpc.Priority = 1
		rpc.BackgroundPriority = 1
	}
	rng := rand.New(rand.NewSource(seed))
	crossTarget := hosts[3]
	for i, src := range []topology.NodeID{hosts[1], hosts[4], hosts[5]} {
		b := &traffic.Bursty{
			Net: net, Src: src, Dst: crossTarget,
			Flow: routing.FlowID(1000 + i), Bandwidth: 200 * sim.Mbps,
			Tag: 100 + i, Priority: 1,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		}
		if err := b.Start(sim.Time(1) << 62); err != nil {
			return 0, err
		}
	}
	if err := rpc.Start(); err != nil {
		return 0, err
	}
	eng := net.Engine()
	for rpc.RTT.N() < int64(rpcs) && eng.Pending() > 0 {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		if eng.Now() > 60*sim.Second {
			return 0, fmt.Errorf("rpcs starved")
		}
	}
	return rpc.RTT.Mean(), nil
}

// RenderPriority renders the comparison.
func RenderPriority(rows []PriorityRow) string {
	var b strings.Builder
	b.WriteString("Priority queueing vs topology (§2.1.4 / DeTail): RPC under 3x200 Mb/s cross-traffic\n")
	fmt.Fprintf(&b, "%-16s %-10s %12s\n", "topology", "discipline", "RTT (us)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-10s %12.1f\n", r.Topology, r.Discipline, r.RTTUs)
	}
	return b.String()
}
