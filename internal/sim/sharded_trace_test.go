package sim

import (
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// traceWorkload builds a 2-shard engine with local chains on both
// shards, a cross-shard bounce, and one global event.
func traceWorkload() (*ShardedEngine, Time) {
	const prop = 250 * Nanosecond
	s := NewShardedEngine(2, prop, func(int) *Engine { return NewCalendarEngine() })
	for i := 0; i < 2; i++ {
		act := &countAction{eng: s.Shard(i)}
		s.Shard(i).ScheduleAction(Nanosecond, act, 64, 0)
	}
	var out []int64
	c := &crossAction{s: s, prop: prop, out: &out}
	s.Shard(0).ScheduleAction(0, c, 0, 9)
	s.Schedule(Microsecond, func() {})
	return s, 10 * Microsecond
}

func TestAttachTraceRecordsEngineSpans(t *testing.T) {
	s, end := traceWorkload()
	rec := trace.NewRecorder()
	reg := metrics.NewRegistry()
	s.AttachTrace(ShardedTraceOptions{Recorder: rec, Registry: reg})

	before := BarrierProfileSnapshot()
	s.RunUntil(end)
	prof := BarrierProfileSnapshot().Sub(before)

	if prof.Windows == 0 || prof.Windows != s.Windows() {
		t.Fatalf("profile windows %d, engine windows %d", prof.Windows, s.Windows())
	}
	if prof.GlobalPhases == 0 {
		t.Fatal("no global phases profiled despite a global event")
	}
	if prof.CrossShardEvents != s.Crossed() {
		t.Fatalf("profile crossed %d, engine crossed %d", prof.CrossShardEvents, s.Crossed())
	}
	if prof.WindowWallSecs <= 0 {
		t.Fatal("no window wall time profiled")
	}
	if prof.BarrierWaitFrac < 0 || prof.BarrierWaitFrac > 1 {
		t.Fatalf("barrier wait fraction %v outside [0,1]", prof.BarrierWaitFrac)
	}
	if s.RingHighWater() == 0 {
		t.Fatal("ring high-water 0 despite cross-shard events")
	}

	names := map[string]int{}
	tracks := map[int]bool{}
	for _, sp := range rec.Spans() {
		if sp.Cat != "engine" {
			t.Fatalf("unexpected category %q", sp.Cat)
		}
		names[sp.Name]++
		if sp.Name == "window" {
			tracks[sp.Track] = true
			if sp.VirtEnd <= sp.Virt {
				t.Fatalf("window span with empty virtual extent: %+v", sp)
			}
		}
	}
	for _, want := range []string{"window", "barrier", "global", "drain"} {
		if names[want] == 0 {
			t.Fatalf("no %q spans recorded (got %v)", want, names)
		}
	}
	if names["window"] != names["barrier"] {
		t.Fatalf("%d window vs %d barrier spans", names["window"], names["barrier"])
	}
	if !tracks[0] || !tracks[1] {
		t.Fatalf("window spans missing a shard track: %v", tracks)
	}
	if names["window"] != int(s.Windows())*2 {
		t.Fatalf("%d window spans for %d windows on 2 shards", names["window"], s.Windows())
	}

	// Aggregates landed in the registry.
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, se := range snap.Series {
		found[se.Name] = true
		if se.Name == "sim_window_virtual_us" && se.Count == 0 {
			t.Fatal("window-length histogram empty")
		}
		if se.Name == "sim_barrier_wait_us" && se.Count == 0 {
			t.Fatal("barrier-wait histogram empty")
		}
	}
	for _, want := range []string{"sim_window_virtual_us", "sim_barrier_wait_us", "sim_shard_imbalance"} {
		if !found[want] {
			t.Fatalf("registry missing %s (got %v)", want, found)
		}
	}

	// The Chrome export carries one named track per shard.
	var b strings.Builder
	if err := rec.WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"shard 0"`, `"shard 1"`, `"coordinator"`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("chrome export missing track name %s", want)
		}
	}
}

func TestAttachTraceRegistryOnly(t *testing.T) {
	s, end := traceWorkload()
	reg := metrics.NewRegistry()
	s.AttachTrace(ShardedTraceOptions{Registry: reg})
	s.RunUntil(end)
	if h := reg.Histogram("sim_barrier_wait_us", "", nil); h.Count() == 0 {
		t.Fatal("registry-only attach observed nothing")
	}
}

func TestAttachShardedHeartbeat(t *testing.T) {
	s, end := traceWorkload()
	reg := metrics.NewRegistry()
	var ticks int
	h := AttachShardedHeartbeat(s, reg, Microsecond, end)
	h.OnTick = func(at Time) { ticks++ }
	s.RunUntil(end)
	if ticks == 0 {
		t.Fatal("heartbeat never ticked")
	}
	if got := reg.Counter("sim_windows_total", "", nil).Value(); got != s.Windows() {
		t.Fatalf("sim_windows_total %d, engine windows %d", got, s.Windows())
	}
	if got := reg.Counter("sim_cross_shard_events_total", "", nil).Value(); got != s.Crossed() {
		t.Fatalf("sim_cross_shard_events_total %d, engine crossed %d", got, s.Crossed())
	}
	frac := reg.Gauge("sim_barrier_wait_fraction", "", nil).Value()
	if frac < 0 || frac > 1 {
		t.Fatalf("barrier wait fraction %v outside [0,1]", frac)
	}
}

// TestCrossZeroAllocs pins the disabled-path invariant on the
// cross-shard side: with no trace attached, pushing through a
// non-overflowing SPSC ring and draining it allocates nothing.
func TestCrossZeroAllocs(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewCalendarEngine() })
	act := &countAction{}
	sink := func(remote) {}
	// Warm ring internals.
	for i := 0; i < 16; i++ {
		s.Cross(0, 1, Time(i)*Nanosecond, act, 0, 0)
	}
	s.rings[0][1].drain(sink)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			s.Cross(0, 1, Time(i)*Nanosecond, act, 0, 0)
		}
		s.rings[0][1].drain(sink)
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per 16-event cross+drain, want 0", allocs)
	}
}

// TestShardedRunDisabledNoSpanState makes sure a plain run leaves no
// trace state behind: profiling is aggregate-only.
func TestShardedRunDisabledNoSpanState(t *testing.T) {
	s, end := traceWorkload()
	s.RunUntil(end)
	if s.trc != nil {
		t.Fatal("trace state attached without AttachTrace")
	}
	if s.winWall <= 0 || s.shardBusy() < 0 {
		t.Fatalf("window profile not accumulated: win=%v busy=%v", s.winWall, s.shardBusy())
	}
}
