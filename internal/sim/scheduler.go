package sim

// Scheduler is the scheduling surface of a simulation execution — the
// API redesign that lets netsim, traffic generators, fault injectors,
// and probes run unchanged on either a single-threaded *Engine or a
// parallel *ShardedEngine. Code that used to hold a concrete *Engine
// should hold a Scheduler instead and obtain it from whatever execution
// it is attached to (for netsim: Network.Scheduler for run control and
// global work, Network.SchedulerFor(node) for node-local work).
//
// Prefer ScheduleAction/AfterAction on hot paths: the closure forms
// (Schedule/After) box a func() per event, while the Action forms store
// an interface pointer plus two integers directly in the event record
// and allocate nothing (see Action and the doc comments in engine.go).
//
// Semantics every implementation provides:
//
//   - Now is the current virtual time of the calling context. For an
//     Engine that is the global clock; for a ShardedEngine it is the
//     synchronizer's committed time (shard-local clocks may be ahead
//     within the current window, but never behind).
//   - Schedule*/After* enqueue work at an absolute/relative virtual
//     time; scheduling in the past panics. On a ShardedEngine the work
//     runs in a global phase with every shard parked, so it may touch
//     any shard's state (this is how fault injection stays race-free).
//   - ScheduleFlex/AfterFlex enqueue work that may run up to tol of
//     virtual time late. An Engine ignores the tolerance (no barrier to
//     amortize — the work runs exactly on time); a ShardedEngine uses
//     the slack to coalesce periodic global work into fewer
//     all-shards-parked phases, so high-rate samplers stop fragmenting
//     parallel windows. The execution time is deterministic and
//     identical for every shard count.
//   - RunUntil processes events with timestamps <= end and then
//     advances the clock to end; Run processes until empty. Stop halts
//     the loop; on a ShardedEngine it may be called from any goroutine
//     (the watchdog pattern) and takes effect at the next window
//     boundary.
type Scheduler interface {
	Now() Time
	Schedule(at Time, fn func())
	ScheduleAction(at Time, act Action, a, b int64)
	After(delay Time, fn func())
	AfterAction(delay Time, act Action, a, b int64)
	ScheduleFlex(at, tol Time, fn func())
	AfterFlex(delay, tol Time, fn func())
	Run()
	RunUntil(end Time)
	Stop()
	Processed() uint64
	Pending() int
	Telemetry() Telemetry
}

var (
	_ Scheduler = (*Engine)(nil)
	_ Scheduler = (*ShardedEngine)(nil)
)
