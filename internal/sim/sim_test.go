package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{3 * Second, "3s"},
		{500 * Microsecond, "500.000us"},
		{6 * Microsecond, "6.000us"},
		{380 * Nanosecond, "380.000ns"},
		{7 * Picosecond, "7ps"},
		{2500 * Nanosecond, "2.500us"},
		{1500 * Millisecond, "1500.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{10 * Gbps, "10Gbps"},
		{200 * Mbps, "200Mbps"},
		{64 * Kbps, "64Kbps"},
		{999, "999bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSerializeExact(t *testing.T) {
	// 400-byte paper packet at 10 Gbps: 3200 bits / 1e10 bps = 320 ns.
	if got := (10 * Gbps).Serialize(400); got != 320*Nanosecond {
		t.Errorf("400B @ 10Gbps = %v, want 320ns", got)
	}
	// 1500-byte frame at 1 Gbps: 12000 bits / 1e9 = 12 us.
	if got := (1 * Gbps).Serialize(1500); got != 12*Microsecond {
		t.Errorf("1500B @ 1Gbps = %v, want 12us", got)
	}
	// One bit at 100 Gbps is exactly 10 ps, so one byte is 80 ps.
	if got := (100 * Gbps).Serialize(1); got != 80*Picosecond {
		t.Errorf("1B @ 100Gbps = %v, want 80ps", got)
	}
}

func TestSerializePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Serialize on zero rate did not panic")
		}
	}()
	Rate(0).Serialize(1)
}

func TestBytesIn(t *testing.T) {
	if got := (10 * Gbps).BytesIn(Microsecond); got != 1250 {
		t.Errorf("10Gbps.BytesIn(1us) = %d, want 1250", got)
	}
	if got := (1 * Gbps).BytesIn(Second); got != 125_000_000 {
		t.Errorf("1Gbps.BytesIn(1s) = %d, want 125e6", got)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := 42 * time.Microsecond
	if got := FromDuration(d).Duration(); got != d {
		t.Errorf("round trip = %v, want %v", got, d)
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
}

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	times := []Time{5, 1, 3, 2, 4, 1, 0}
	for _, at := range times {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Errorf("events ran out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Errorf("ran %d events, want %d", len(order), len(times))
	}
	if e.Processed() != uint64(len(times)) {
		t.Errorf("Processed() = %d, want %d", e.Processed(), len(times))
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered at %d: got %v", i, order[:i+1])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(12, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 12, 15}
	if len(hits) != len(want) {
		t.Fatalf("got %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("hit %d at %v, want %v", i, hits[i], want[i])
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	// A subsequent Run picks up where we left off.
	e.Run()
	if ran != 2 {
		t.Errorf("resume ran %d total, want 2", ran)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for _, at := range []Time{10, 20, 30} {
		e.Schedule(at, func() { ran++ })
	}
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("RunUntil(20) ran %d events, want 2 (inclusive bound)", ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v after RunUntil(20), want 20", e.Now())
	}
	e.RunUntil(100)
	if ran != 3 {
		t.Errorf("second RunUntil ran %d total, want 3", ran)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want clock advanced to 100", e.Now())
	}
}

// TestEngineOrderingProperty checks, over random schedules, that events
// always run in non-decreasing time order and that all events run.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		var last Time = -1
		ok := true
		ran := 0
		for i := 0; i < count; i++ {
			at := Time(rng.Int63n(1000))
			e.Schedule(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				ran++
			})
		}
		e.Run()
		return ok && ran == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}
