package sim

// Coalescible ("flex") global events for the sharded synchronizer.
//
// A strict global event at time g forces the synchronizer to stop every
// parallel window at g: shards may not process anything at or beyond g
// before the event has run. Periodic observability work — heartbeats,
// queue samplers — does not need that precision, yet at high sample
// rates it fragments every prospective window. A flex event instead
// declares a tolerance: "run me at my nominal time or up to tol later,
// whichever lets the machine do more work per stop." The synchronizer
// batches every flex event whose nominal time falls inside the current
// prospective window into one all-shards-parked phase at the earliest
// flex deadline (or the next strict global, if that comes first), so N
// periodic tickers cost one phase per tolerance interval instead of N
// window fragmentations per period.
//
// Determinism: the phase time is min(earliest strict global, earliest
// flex deadline, horizon) — a pure function of event timestamps, never
// of the shard count or goroutine timing — so runs remain byte-identical
// for every K. A tolerance of zero degenerates to exactly the strict
// schedule. Flex events at the same phase run in (nominal time, schedule
// order); they run before strict globals sharing the instant, which can
// only be the phase time itself.

// flexEvent is one coalescible global callback.
type flexEvent struct {
	at  Time // nominal time
	tol Time // admissible lateness; deadline is at+tol
	seq uint64
	fn  func()
}

// flexQueue holds pending flex events. The population is a handful of
// periodic tickers, so linear scans beat heap bookkeeping and keep the
// ordering rules ((at, seq), min-deadline) trivially auditable.
type flexQueue struct {
	items []flexEvent
	seq   uint64
}

func (q *flexQueue) size() int { return len(q.items) }

func (q *flexQueue) add(at, tol Time, fn func()) {
	q.seq++
	q.items = append(q.items, flexEvent{at: at, tol: tol, seq: q.seq, fn: fn})
}

// bounds returns the earliest nominal time and the earliest deadline
// (both MaxTime when empty). The deadline is the latest instant the
// synchronizer may defer a stop to without violating any tolerance.
func (q *flexQueue) bounds() (minAt, minDeadline Time) {
	minAt, minDeadline = MaxTime, MaxTime
	for i := range q.items {
		e := &q.items[i]
		if e.at < minAt {
			minAt = e.at
		}
		if d := satAdd(e.at, e.tol); d < minDeadline {
			minDeadline = d
		}
	}
	return minAt, minDeadline
}

// popDue removes and returns the due event with the smallest
// (at, seq) — the next flex event to run in a phase at time p — or
// ok=false when none is due at or before p.
func (q *flexQueue) popDue(p Time) (flexEvent, bool) {
	best := -1
	for i := range q.items {
		e := &q.items[i]
		if e.at > p {
			continue
		}
		if best < 0 || e.at < q.items[best].at ||
			(e.at == q.items[best].at && e.seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return flexEvent{}, false
	}
	ev := q.items[best]
	last := len(q.items) - 1
	q.items[best] = q.items[last]
	q.items[last] = flexEvent{} // drop the fn reference
	q.items = q.items[:last]
	return ev, true
}
