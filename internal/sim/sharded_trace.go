package sim

// Execution tracing for the sharded synchronizer. Two layers:
//
//   - Always-on profiling: the coordinator stamps the wall clock once
//     around every epoch and folds compute-vs-wait aggregates into
//     package counters (BarrierProfileSnapshot). Cost: two time.Now
//     calls and K field reads per epoch — not per stride or per event,
//     so neither the intra-shard hot path nor the stride loop pays.
//   - Opt-in span recording (AttachTrace): per-window spans on a
//     trace.Recorder — one "window" (compute) plus one "barrier" (wait)
//     span per shard per window, "global" spans for all-shards-parked
//     phases, "drain" spans for ring commits — plus window-length and
//     barrier-wait histograms and a shard-imbalance gauge in a
//     metrics.Registry. While a trace is attached the synchronizer runs
//     one stride per epoch so every window's wall time is stamped
//     coordinator-side; the event schedule is identical, only the
//     batching (and so the epoch count) differs. Disabled (the default)
//     this is a single nil check per epoch.
//
// The per-shard compute wall time is free to read: Engine.RunUntil
// already accumulates e.wall across calls, and the epoch barrier's
// arrival edge (the last shard's done send) makes the shard's update
// visible to the coordinator. Barrier wait is then window wall minus
// the shard's compute delta.

import (
	"sync/atomic"
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// ShardedTraceOptions configures AttachTrace. Recorder receives the
// spans (nil records nothing); Registry receives the aggregate
// histograms and gauges (nil skips them). Either alone is useful:
// histograms without spans for long runs, spans without a registry for
// a one-shot Perfetto export.
type ShardedTraceOptions struct {
	Recorder *trace.Recorder
	Registry *metrics.Registry
}

// shardedTrace is the attached per-synchronizer trace state.
type shardedTrace struct {
	rec         *trace.Recorder
	windowVirt  *metrics.LatencyHistogram
	windowSpan  *metrics.LatencyHistogram
	barrierWait *metrics.LatencyHistogram
	imbalance   *metrics.Gauge
}

// AttachTrace enables span recording and aggregate trace metrics on the
// synchronizer. Call before RunUntil. The registry instruments:
//
//	sim_window_virtual_us  histogram  committed window span [T, min W_j) in virtual µs
//	sim_window_span_us     histogram  per-shard realized window [T, W_j) in virtual µs
//	sim_barrier_wait_us    histogram  per-shard barrier wait per window, wall µs
//	sim_shard_imbalance    gauge      (max-min)/mean events across shards, last window
//
// sim_window_virtual_us is how far the synchronizer's committed clock
// moves per window; sim_window_span_us is how far individual shards
// were allowed to run — the spread between them is the leverage of the
// per-pair lookahead matrix over a single global bound.
//
// The recorder's "engine" category carries one track per shard plus the
// coordinator track: per window, each shard gets a "window" span (wall
// duration = compute time, args: events) followed by a "barrier" span
// (wall duration = wait time); the coordinator records "global" spans
// for parked phases and "drain" spans (args: events, ring_high) when a
// barrier commits cross-shard events.
func (s *ShardedEngine) AttachTrace(o ShardedTraceOptions) {
	if o.Recorder == nil && o.Registry == nil {
		return
	}
	t := &shardedTrace{rec: o.Recorder}
	if o.Registry != nil {
		t.windowVirt = o.Registry.Histogram("sim_window_virtual_us",
			"committed parallel window length in virtual microseconds", nil)
		t.windowSpan = o.Registry.Histogram("sim_window_span_us",
			"per-shard realized window length in virtual microseconds", nil)
		t.barrierWait = o.Registry.Histogram("sim_barrier_wait_us",
			"per-shard barrier wait per window in wall microseconds", nil)
		t.imbalance = o.Registry.Gauge("sim_shard_imbalance",
			"(max-min)/mean events across shards over the last window", nil)
	}
	if o.Recorder != nil {
		o.Recorder.NameTrack("engine", trace.CoordinatorTrack, "coordinator")
		for i := range s.engines {
			o.Recorder.NameTrack("engine", i, shardTrackName(i))
		}
	}
	s.trc = t
}

// shardTrackName renders "shard N" without fmt (cheap, no import churn).
func shardTrackName(i int) string {
	digits := [20]byte{}
	n := len(digits)
	for {
		n--
		digits[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	return "shard " + string(digits[n:])
}

// traceWindow records the spans and metrics for one parallel window
// that opened at T and committed up to minW (the minimum per-shard
// bound + 1) with wall time winWall. Called by the coordinator with
// shards parked; s.bounds holds each shard's realized bound W_i − 1 and
// ranBefore/wallBefore the pre-window snapshots.
func (s *ShardedEngine) traceWindow(T, minW Time, winStart time.Time, winWall time.Duration) {
	t := s.trc
	wallBase := t.rec.Since(winStart)
	var minEv, maxEv, sumEv uint64
	minEv = ^uint64(0)
	for i, e := range s.engines {
		W := s.bounds[i] + 1
		busy := e.wall - s.wallBefore[i]
		if busy < 0 {
			busy = 0
		}
		if busy > winWall {
			busy = winWall
		}
		wait := winWall - busy
		evts := e.ran - s.ranBefore[i]
		if evts < minEv {
			minEv = evts
		}
		if evts > maxEv {
			maxEv = evts
		}
		sumEv += evts
		t.rec.Add(trace.Span{
			Name: "window", Cat: "engine", Track: i,
			Virt: int64(T), VirtEnd: int64(W),
			Wall: wallBase, WallDur: busy.Nanoseconds(),
		}.Annotate("events", int64(evts)))
		t.rec.Add(trace.Span{
			Name: "barrier", Cat: "engine", Track: i,
			Virt: int64(W), VirtEnd: int64(W),
			Wall: wallBase + busy.Nanoseconds(), WallDur: wait.Nanoseconds(),
		})
		if t.barrierWait != nil {
			t.barrierWait.Observe(float64(wait.Nanoseconds()) / 1e3)
		}
		if t.windowSpan != nil {
			t.windowSpan.Observe(float64(W-T) / float64(Microsecond))
		}
	}
	if t.windowVirt != nil {
		t.windowVirt.Observe(float64(minW-T) / float64(Microsecond))
	}
	if t.imbalance != nil && sumEv > 0 {
		mean := float64(sumEv) / float64(len(s.engines))
		t.imbalance.Set(float64(maxEv-minEv) / mean)
	}
}

// BarrierProfile is the always-on aggregate of the synchronizer's
// parallel-execution economics: where window wall time went. It is the
// barrier_profile block of the quartzbench -json report; snapshot with
// BarrierProfileSnapshot and subtract to scope a run.
type BarrierProfile struct {
	// Windows counts epochs — coordinator park/wake barrier round trips,
	// the expensive synchronization operations (one channel broadcast, K
	// receives, an arrival countdown and a done send each). Strides
	// counts the conservative parallel windows executed inside them;
	// strides beyond the first in an epoch cost only a spin-barrier
	// round among the shard workers, so Strides − Windows is the
	// synchronization the epoch batching saved. GlobalPhases counts
	// all-shards-parked phases (each serializes the run and ends an
	// epoch).
	Windows      uint64 `json:"windows"`
	Strides      uint64 `json:"strides"`
	GlobalPhases uint64 `json:"global_phases"`
	// CoalescedGlobals counts flex events that ran after their nominal
	// time — epoch fragmentations avoided by coalescing tolerance.
	CoalescedGlobals uint64 `json:"coalesced_globals"`
	// CrossShardEvents counts events committed through the SPSC rings.
	CrossShardEvents uint64 `json:"cross_shard_events"`
	// VirtualSecs is the committed virtual time the synchronizer
	// advanced; WindowsPerVirtualSec = Windows / VirtualSecs is the
	// synchronization-rate figure of merit — how many coordinator
	// barriers the run pays per simulated second (lower is better for
	// the same workload). StridesPerVirtualSec is the same rate for the
	// cheap in-epoch barrier.
	VirtualSecs          float64 `json:"virtual_secs"`
	WindowsPerVirtualSec float64 `json:"windows_per_virtual_sec"`
	StridesPerVirtualSec float64 `json:"strides_per_virtual_sec"`
	// WindowWallSecs is coordinator wall time spent inside windows;
	// ShardBusySecs sums per-shard compute inside those windows (can
	// exceed WindowWallSecs·1 — it sums across K shards); BarrierWaitSecs
	// is K·WindowWallSecs − ShardBusySecs: shard-seconds spent parked at
	// the barrier.
	WindowWallSecs  float64 `json:"window_wall_secs"`
	ShardBusySecs   float64 `json:"shard_busy_secs"`
	BarrierWaitSecs float64 `json:"barrier_wait_secs"`
	// BarrierWaitFrac is BarrierWaitSecs over K·WindowWallSecs — the
	// fraction of parallel capacity lost to the barrier (0 = perfect
	// scaling, →1 = fully serialized).
	BarrierWaitFrac float64 `json:"barrier_wait_frac"`
}

// Package-level profile accumulators, folded once per RunUntil call.
var (
	bpWindows    atomic.Uint64
	bpStrides    atomic.Uint64
	bpGlobals    atomic.Uint64
	bpCoalesced  atomic.Uint64
	bpCrossed    atomic.Uint64
	bpVirtualPs  atomic.Int64 // virtual picoseconds committed
	bpWindowWall atomic.Int64 // ns
	bpShardBusy  atomic.Int64 // ns
	bpWaitNs     atomic.Int64 // ns
)

// BarrierProfileSnapshot returns the process-wide barrier profile
// accumulated by every ShardedEngine run so far. Like TotalEvents, the
// intended use is a before/after delta around a benchmark.
func BarrierProfileSnapshot() BarrierProfile {
	p := BarrierProfile{
		Windows:          bpWindows.Load(),
		Strides:          bpStrides.Load(),
		GlobalPhases:     bpGlobals.Load(),
		CoalescedGlobals: bpCoalesced.Load(),
		CrossShardEvents: bpCrossed.Load(),
		VirtualSecs:      float64(bpVirtualPs.Load()) / float64(Second),
		WindowWallSecs:   float64(bpWindowWall.Load()) / 1e9,
		ShardBusySecs:    float64(bpShardBusy.Load()) / 1e9,
		BarrierWaitSecs:  float64(bpWaitNs.Load()) / 1e9,
	}
	return p.withFrac()
}

// Sub returns the profile delta p − prev with the wait fraction
// recomputed over the delta.
func (p BarrierProfile) Sub(prev BarrierProfile) BarrierProfile {
	d := BarrierProfile{
		Windows:          p.Windows - prev.Windows,
		Strides:          p.Strides - prev.Strides,
		GlobalPhases:     p.GlobalPhases - prev.GlobalPhases,
		CoalescedGlobals: p.CoalescedGlobals - prev.CoalescedGlobals,
		CrossShardEvents: p.CrossShardEvents - prev.CrossShardEvents,
		VirtualSecs:      p.VirtualSecs - prev.VirtualSecs,
		WindowWallSecs:   p.WindowWallSecs - prev.WindowWallSecs,
		ShardBusySecs:    p.ShardBusySecs - prev.ShardBusySecs,
		BarrierWaitSecs:  p.BarrierWaitSecs - prev.BarrierWaitSecs,
	}
	return d.withFrac()
}

func (p BarrierProfile) withFrac() BarrierProfile {
	// Busy + Wait = K·WindowWall: the shard-seconds of parallel capacity.
	if denom := p.ShardBusySecs + p.BarrierWaitSecs; denom > 0 {
		p.BarrierWaitFrac = p.BarrierWaitSecs / denom
	}
	if p.VirtualSecs > 0 {
		p.WindowsPerVirtualSec = float64(p.Windows) / p.VirtualSecs
		p.StridesPerVirtualSec = float64(p.Strides) / p.VirtualSecs
	}
	return p
}

// profileBase snapshots a synchronizer's profile-relevant state at the
// start of a RunUntil call, so foldProfile can commit only the call's
// delta.
type profileBase struct {
	winWall   time.Duration
	busy      time.Duration
	windows   uint64
	strides   uint64
	globals   uint64
	crossed   uint64
	coalesced uint64
}

// foldProfile commits one RunUntil call's window aggregates into the
// package accumulators. Deltas, so repeated RunUntil calls compose;
// virt is the committed virtual time the call advanced.
func (s *ShardedEngine) foldProfile(prev profileBase, virt Time) {
	dWin := s.winWall - prev.winWall
	dBusy := s.shardBusy() - prev.busy
	bpWindows.Add(s.windows - prev.windows)
	bpStrides.Add(s.strides - prev.strides)
	bpGlobals.Add(s.globalPhases - prev.globals)
	bpCoalesced.Add(s.coalesced - prev.coalesced)
	bpCrossed.Add(s.crossed - prev.crossed)
	if virt > 0 {
		bpVirtualPs.Add(int64(virt))
	}
	bpWindowWall.Add(dWin.Nanoseconds())
	bpShardBusy.Add(dBusy.Nanoseconds())
	if wait := time.Duration(len(s.engines))*dWin - dBusy; wait > 0 {
		bpWaitNs.Add(wait.Nanoseconds())
	}
}

// ShardedHeartbeat publishes the synchronizer's parallel-execution
// health live: how much of the machine the barrier is wasting and how
// evenly the shards are loaded. Attach with AttachShardedHeartbeat;
// the tick runs as a global (all-shards-parked) event, so it reads
// coordinator-only state race-free.
type ShardedHeartbeat struct {
	s *ShardedEngine

	windows    *metrics.Counter
	strides    *metrics.Counter
	crossed    *metrics.Counter
	coalesced  *metrics.Counter
	waitFrac   *metrics.Gauge
	winPerVsec *metrics.Gauge
	evSkew     *metrics.Gauge

	lastWindows   uint64
	lastStrides   uint64
	lastCrossed   uint64
	lastCoalesced uint64
	lastWin       time.Duration
	lastBusy      time.Duration
	lastNow       Time
	lastShardEv   []uint64

	// OnTick, if set, runs after each publish with the tick's virtual
	// time — same contract as Heartbeat.OnTick.
	OnTick func(at Time)
}

// AttachShardedHeartbeat registers the synchronizer's parallel-health
// instruments in r and schedules a publishing tick every interval of
// virtual time until the given time (inclusive). The tick is a global
// event: shards are parked while it runs. The instruments:
//
//	sim_windows_total             counter  coordinator epochs released
//	sim_strides_total             counter  conservative windows executed inside them
//	sim_cross_shard_events_total  counter  events committed through the rings
//	sim_coalesced_globals_total   counter  flex events deferred past their nominal time
//	sim_barrier_wait_fraction     gauge    fraction of shard-time inside windows
//	                                       spent waiting at the barrier, last interval
//	sim_windows_per_virtual_sec   gauge    barriers per simulated second, last interval
//	sim_shard_events_skew         gauge    (max-min)/mean per-shard events, last interval
//
// Pair with per-shard AttachHeartbeatLabeled heartbeats (netsim.Observe
// wires both) for the full live picture: per-shard rates plus the
// barrier economics between them.
func AttachShardedHeartbeat(s *ShardedEngine, r *metrics.Registry, interval, until Time) *ShardedHeartbeat {
	return AttachShardedHeartbeatCoalesced(s, r, interval, until, 0)
}

// AttachShardedHeartbeatCoalesced is AttachShardedHeartbeat with a
// coalescing tolerance: each tick may run up to tol of virtual time
// late, batched with other global work into one all-shards-parked
// phase (see ScheduleFlex). Tick times remain deterministic and
// identical for every shard count; tol = 0 is exactly the strict
// heartbeat.
func AttachShardedHeartbeatCoalesced(s *ShardedEngine, r *metrics.Registry, interval, until, tol Time) *ShardedHeartbeat {
	if interval <= 0 {
		panic("sim: sharded heartbeat interval must be positive")
	}
	h := &ShardedHeartbeat{
		s:           s,
		windows:     r.Counter("sim_windows_total", "coordinator epochs released (park/wake barrier round trips)", nil),
		strides:     r.Counter("sim_strides_total", "conservative parallel windows (strides) executed inside epochs", nil),
		crossed:     r.Counter("sim_cross_shard_events_total", "cross-shard events committed through the SPSC rings", nil),
		coalesced:   r.Counter("sim_coalesced_globals_total", "flex global events deferred past their nominal time to preserve a parallel window", nil),
		waitFrac:    r.Gauge("sim_barrier_wait_fraction", "fraction of in-window shard time spent waiting at the barrier over the last interval", nil),
		winPerVsec:  r.Gauge("sim_windows_per_virtual_sec", "parallel windows per simulated second over the last interval", nil),
		evSkew:      r.Gauge("sim_shard_events_skew", "(max-min)/mean per-shard events over the last interval", nil),
		lastShardEv: make([]uint64, len(s.engines)),
	}
	var tick func()
	tick = func() {
		h.publish()
		if s.Now()+interval <= until {
			s.AfterFlex(interval, tol, tick)
		}
	}
	s.AfterFlex(interval, tol, tick)
	return h
}

// publish copies the synchronizer state into the instruments and
// advances the interval baselines. Runs inside a global phase.
func (h *ShardedHeartbeat) publish() {
	s := h.s
	dWindows := s.windows - h.lastWindows
	h.windows.Add(dWindows)
	h.strides.Add(s.strides - h.lastStrides)
	h.crossed.Add(s.crossed - h.lastCrossed)
	h.coalesced.Add(s.coalesced - h.lastCoalesced)
	h.lastWindows = s.windows
	h.lastStrides = s.strides
	h.lastCrossed = s.crossed
	h.lastCoalesced = s.coalesced

	if dNow := s.now - h.lastNow; dNow > 0 {
		h.winPerVsec.Set(float64(dWindows) / dNow.Seconds())
	}
	h.lastNow = s.now

	busy := s.shardBusy()
	dWin := s.winWall - h.lastWin
	dBusy := busy - h.lastBusy
	h.lastWin = s.winWall
	h.lastBusy = busy
	if cap := time.Duration(len(s.engines)) * dWin; cap > 0 {
		frac := float64(cap-dBusy) / float64(cap)
		if frac < 0 {
			frac = 0
		}
		h.waitFrac.Set(frac)
	}

	var minEv, maxEv, sumEv uint64
	minEv = ^uint64(0)
	for i, e := range s.engines {
		d := e.ran - h.lastShardEv[i]
		h.lastShardEv[i] = e.ran
		if d < minEv {
			minEv = d
		}
		if d > maxEv {
			maxEv = d
		}
		sumEv += d
	}
	if sumEv > 0 {
		mean := float64(sumEv) / float64(len(s.engines))
		h.evSkew.Set(float64(maxEv-minEv) / mean)
	}

	if h.OnTick != nil {
		h.OnTick(s.Now())
	}
}
