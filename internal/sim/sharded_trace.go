package sim

// Execution tracing for the sharded synchronizer. Two layers:
//
//   - Always-on window profiling: the coordinator stamps the wall clock
//     once around every parallel window and folds compute-vs-wait
//     aggregates into package counters (BarrierProfileSnapshot). Cost:
//     two time.Now calls and K field reads per window — per-window, not
//     per-event, so the intra-shard hot path is untouched.
//   - Opt-in span recording (AttachTrace): per-window spans on a
//     trace.Recorder — one "window" (compute) plus one "barrier" (wait)
//     span per shard per window, "global" spans for all-shards-parked
//     phases, "drain" spans for ring commits — plus window-length and
//     barrier-wait histograms and a shard-imbalance gauge in a
//     metrics.Registry. Disabled (the default) this is a single nil
//     check per window.
//
// The per-shard compute wall time is free to read: Engine.RunUntil
// already accumulates e.wall across calls, and the window barrier's
// WaitGroup edge makes the shard's update visible to the coordinator.
// Barrier wait is then window wall minus the shard's compute delta.

import (
	"sync/atomic"
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// ShardedTraceOptions configures AttachTrace. Recorder receives the
// spans (nil records nothing); Registry receives the aggregate
// histograms and gauges (nil skips them). Either alone is useful:
// histograms without spans for long runs, spans without a registry for
// a one-shot Perfetto export.
type ShardedTraceOptions struct {
	Recorder *trace.Recorder
	Registry *metrics.Registry
}

// shardedTrace is the attached per-synchronizer trace state.
type shardedTrace struct {
	rec         *trace.Recorder
	windowVirt  *metrics.LatencyHistogram
	barrierWait *metrics.LatencyHistogram
	imbalance   *metrics.Gauge
}

// AttachTrace enables span recording and aggregate trace metrics on the
// synchronizer. Call before RunUntil. The registry instruments:
//
//	sim_window_virtual_us  histogram  parallel window length [T, W) in virtual µs
//	sim_barrier_wait_us    histogram  per-shard barrier wait per window, wall µs
//	sim_shard_imbalance    gauge      (max-min)/mean events across shards, last window
//
// The recorder's "engine" category carries one track per shard plus the
// coordinator track: per window, each shard gets a "window" span (wall
// duration = compute time, args: events) followed by a "barrier" span
// (wall duration = wait time); the coordinator records "global" spans
// for parked phases and "drain" spans (args: events, ring_high) when a
// barrier commits cross-shard events.
func (s *ShardedEngine) AttachTrace(o ShardedTraceOptions) {
	if o.Recorder == nil && o.Registry == nil {
		return
	}
	t := &shardedTrace{rec: o.Recorder}
	if o.Registry != nil {
		t.windowVirt = o.Registry.Histogram("sim_window_virtual_us",
			"parallel window length in virtual microseconds", nil)
		t.barrierWait = o.Registry.Histogram("sim_barrier_wait_us",
			"per-shard barrier wait per window in wall microseconds", nil)
		t.imbalance = o.Registry.Gauge("sim_shard_imbalance",
			"(max-min)/mean events across shards over the last window", nil)
	}
	if o.Recorder != nil {
		o.Recorder.NameTrack("engine", trace.CoordinatorTrack, "coordinator")
		for i := range s.engines {
			o.Recorder.NameTrack("engine", i, shardTrackName(i))
		}
	}
	s.trc = t
}

// shardTrackName renders "shard N" without fmt (cheap, no import churn).
func shardTrackName(i int) string {
	digits := [20]byte{}
	n := len(digits)
	for {
		n--
		digits[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	return "shard " + string(digits[n:])
}

// traceWindow records the spans and metrics for one parallel window
// [T, W) whose wall time was winWall. Called by the coordinator with
// shards parked; ranBefore/wallBefore hold the pre-window snapshots.
func (s *ShardedEngine) traceWindow(T, W Time, winStart time.Time, winWall time.Duration) {
	t := s.trc
	wallBase := t.rec.Since(winStart)
	var minEv, maxEv, sumEv uint64
	minEv = ^uint64(0)
	for i, e := range s.engines {
		busy := e.wall - s.wallBefore[i]
		if busy < 0 {
			busy = 0
		}
		if busy > winWall {
			busy = winWall
		}
		wait := winWall - busy
		evts := e.ran - s.ranBefore[i]
		if evts < minEv {
			minEv = evts
		}
		if evts > maxEv {
			maxEv = evts
		}
		sumEv += evts
		t.rec.Add(trace.Span{
			Name: "window", Cat: "engine", Track: i,
			Virt: int64(T), VirtEnd: int64(W),
			Wall: wallBase, WallDur: busy.Nanoseconds(),
		}.Annotate("events", int64(evts)))
		t.rec.Add(trace.Span{
			Name: "barrier", Cat: "engine", Track: i,
			Virt: int64(W), VirtEnd: int64(W),
			Wall: wallBase + busy.Nanoseconds(), WallDur: wait.Nanoseconds(),
		})
		if t.barrierWait != nil {
			t.barrierWait.Observe(float64(wait.Nanoseconds()) / 1e3)
		}
	}
	if t.windowVirt != nil {
		t.windowVirt.Observe(float64(W-T) / float64(Microsecond))
	}
	if t.imbalance != nil && sumEv > 0 {
		mean := float64(sumEv) / float64(len(s.engines))
		t.imbalance.Set(float64(maxEv-minEv) / mean)
	}
}

// BarrierProfile is the always-on aggregate of the synchronizer's
// parallel-execution economics: where window wall time went. It is the
// barrier_profile block of the quartzbench -json report; snapshot with
// BarrierProfileSnapshot and subtract to scope a run.
type BarrierProfile struct {
	// Windows counts parallel windows; GlobalPhases counts
	// all-shards-parked phases (each serializes the run).
	Windows      uint64 `json:"windows"`
	GlobalPhases uint64 `json:"global_phases"`
	// CrossShardEvents counts events committed through the SPSC rings.
	CrossShardEvents uint64 `json:"cross_shard_events"`
	// WindowWallSecs is coordinator wall time spent inside windows;
	// ShardBusySecs sums per-shard compute inside those windows (can
	// exceed WindowWallSecs·1 — it sums across K shards); BarrierWaitSecs
	// is K·WindowWallSecs − ShardBusySecs: shard-seconds spent parked at
	// the barrier.
	WindowWallSecs  float64 `json:"window_wall_secs"`
	ShardBusySecs   float64 `json:"shard_busy_secs"`
	BarrierWaitSecs float64 `json:"barrier_wait_secs"`
	// BarrierWaitFrac is BarrierWaitSecs over K·WindowWallSecs — the
	// fraction of parallel capacity lost to the barrier (0 = perfect
	// scaling, →1 = fully serialized).
	BarrierWaitFrac float64 `json:"barrier_wait_frac"`
}

// Package-level profile accumulators, folded once per RunUntil call.
var (
	bpWindows    atomic.Uint64
	bpGlobals    atomic.Uint64
	bpCrossed    atomic.Uint64
	bpWindowWall atomic.Int64 // ns
	bpShardBusy  atomic.Int64 // ns
	bpWaitNs     atomic.Int64 // ns
)

// BarrierProfileSnapshot returns the process-wide barrier profile
// accumulated by every ShardedEngine run so far. Like TotalEvents, the
// intended use is a before/after delta around a benchmark.
func BarrierProfileSnapshot() BarrierProfile {
	p := BarrierProfile{
		Windows:          bpWindows.Load(),
		GlobalPhases:     bpGlobals.Load(),
		CrossShardEvents: bpCrossed.Load(),
		WindowWallSecs:   float64(bpWindowWall.Load()) / 1e9,
		ShardBusySecs:    float64(bpShardBusy.Load()) / 1e9,
		BarrierWaitSecs:  float64(bpWaitNs.Load()) / 1e9,
	}
	return p.withFrac()
}

// Sub returns the profile delta p − prev with the wait fraction
// recomputed over the delta.
func (p BarrierProfile) Sub(prev BarrierProfile) BarrierProfile {
	d := BarrierProfile{
		Windows:          p.Windows - prev.Windows,
		GlobalPhases:     p.GlobalPhases - prev.GlobalPhases,
		CrossShardEvents: p.CrossShardEvents - prev.CrossShardEvents,
		WindowWallSecs:   p.WindowWallSecs - prev.WindowWallSecs,
		ShardBusySecs:    p.ShardBusySecs - prev.ShardBusySecs,
		BarrierWaitSecs:  p.BarrierWaitSecs - prev.BarrierWaitSecs,
	}
	return d.withFrac()
}

func (p BarrierProfile) withFrac() BarrierProfile {
	// Busy + Wait = K·WindowWall: the shard-seconds of parallel capacity.
	if denom := p.ShardBusySecs + p.BarrierWaitSecs; denom > 0 {
		p.BarrierWaitFrac = p.BarrierWaitSecs / denom
	}
	return p
}

// foldProfile commits one RunUntil call's window aggregates into the
// package accumulators. Deltas, so repeated RunUntil calls compose.
func (s *ShardedEngine) foldProfile(prevWin, prevBusy time.Duration, prevWindows, prevGlobals, prevCrossed uint64) {
	dWin := s.winWall - prevWin
	dBusy := s.busyWall - prevBusy
	bpWindows.Add(s.windows - prevWindows)
	bpGlobals.Add(s.globalPhases - prevGlobals)
	bpCrossed.Add(s.crossed - prevCrossed)
	bpWindowWall.Add(dWin.Nanoseconds())
	bpShardBusy.Add(dBusy.Nanoseconds())
	if wait := time.Duration(len(s.engines))*dWin - dBusy; wait > 0 {
		bpWaitNs.Add(wait.Nanoseconds())
	}
}

// ShardedHeartbeat publishes the synchronizer's parallel-execution
// health live: how much of the machine the barrier is wasting and how
// evenly the shards are loaded. Attach with AttachShardedHeartbeat;
// the tick runs as a global (all-shards-parked) event, so it reads
// coordinator-only state race-free.
type ShardedHeartbeat struct {
	s *ShardedEngine

	windows  *metrics.Counter
	crossed  *metrics.Counter
	waitFrac *metrics.Gauge
	evSkew   *metrics.Gauge

	lastWindows uint64
	lastCrossed uint64
	lastWin     time.Duration
	lastBusy    time.Duration
	lastShardEv []uint64

	// OnTick, if set, runs after each publish with the tick's virtual
	// time — same contract as Heartbeat.OnTick.
	OnTick func(at Time)
}

// AttachShardedHeartbeat registers the synchronizer's parallel-health
// instruments in r and schedules a publishing tick every interval of
// virtual time until the given time (inclusive). The tick is a global
// event: shards are parked while it runs. The instruments:
//
//	sim_windows_total            counter  parallel windows executed
//	sim_cross_shard_events_total counter  events committed through the rings
//	sim_barrier_wait_fraction    gauge    fraction of shard-time inside windows
//	                                      spent waiting at the barrier, last interval
//	sim_shard_events_skew        gauge    (max-min)/mean per-shard events, last interval
//
// Pair with per-shard AttachHeartbeatLabeled heartbeats (netsim.Observe
// wires both) for the full live picture: per-shard rates plus the
// barrier economics between them.
func AttachShardedHeartbeat(s *ShardedEngine, r *metrics.Registry, interval, until Time) *ShardedHeartbeat {
	if interval <= 0 {
		panic("sim: sharded heartbeat interval must be positive")
	}
	h := &ShardedHeartbeat{
		s:           s,
		windows:     r.Counter("sim_windows_total", "parallel windows executed", nil),
		crossed:     r.Counter("sim_cross_shard_events_total", "cross-shard events committed through the SPSC rings", nil),
		waitFrac:    r.Gauge("sim_barrier_wait_fraction", "fraction of in-window shard time spent waiting at the barrier over the last interval", nil),
		evSkew:      r.Gauge("sim_shard_events_skew", "(max-min)/mean per-shard events over the last interval", nil),
		lastShardEv: make([]uint64, len(s.engines)),
	}
	var tick func()
	tick = func() {
		h.publish()
		if s.Now()+interval <= until {
			s.After(interval, tick)
		}
	}
	s.After(interval, tick)
	return h
}

// publish copies the synchronizer state into the instruments and
// advances the interval baselines. Runs inside a global phase.
func (h *ShardedHeartbeat) publish() {
	s := h.s
	h.windows.Add(s.windows - h.lastWindows)
	h.crossed.Add(s.crossed - h.lastCrossed)
	h.lastWindows = s.windows
	h.lastCrossed = s.crossed

	dWin := s.winWall - h.lastWin
	dBusy := s.busyWall - h.lastBusy
	h.lastWin = s.winWall
	h.lastBusy = s.busyWall
	if cap := time.Duration(len(s.engines)) * dWin; cap > 0 {
		frac := float64(cap-dBusy) / float64(cap)
		if frac < 0 {
			frac = 0
		}
		h.waitFrac.Set(frac)
	}

	var minEv, maxEv, sumEv uint64
	minEv = ^uint64(0)
	for i, e := range s.engines {
		d := e.ran - h.lastShardEv[i]
		h.lastShardEv[i] = e.ran
		if d < minEv {
			minEv = d
		}
		if d > maxEv {
			maxEv = d
		}
		sumEv += d
	}
	if sumEv > 0 {
		mean := float64(sumEv) / float64(len(s.engines))
		h.evSkew.Set(float64(maxEv-minEv) / mean)
	}

	if h.OnTick != nil {
		h.OnTick(s.Now())
	}
}
