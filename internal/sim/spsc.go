package sim

import (
	"fmt"
	"sync/atomic"
)

// remote is a cross-shard event record: an Action scheduled by one
// shard for execution on another, carried through an spscRing and
// re-scheduled into the destination engine at the next window barrier.
type remote struct {
	at   Time
	act  Action
	a, b int64
}

// spscRing is a bounded single-producer single-consumer ring of remote
// events. The producer is the sending shard's goroutine during a
// window; the consumer is the synchronizer draining at the barrier.
// push and pop are wait-free: one atomic load plus one atomic store
// each, no locks, no allocation.
//
// The ring is intentionally allowed to fill: shardQueue diverts to a
// producer-owned overflow slice when push fails, and the barrier's
// happens-before edge makes the overflow visible to the consumer.
type spscRing struct {
	buf []remote
	// mask == len(buf)-1; len(buf) is a power of two.
	mask uint64

	// head is the consumer cursor, tail the producer cursor. Separate
	// cache lines so the producer's stores don't thrash the consumer's.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
}

func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]remote, n), mask: uint64(n - 1)}
}

// push appends r; it reports false when the ring is full (producer
// side only).
func (q *spscRing) push(r remote) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = r
	q.tail.Store(tail + 1)
	return true
}

// pop removes the oldest record; ok is false when the ring is empty
// (consumer side only).
func (q *spscRing) pop() (r remote, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return remote{}, false
	}
	r = q.buf[head&q.mask]
	q.head.Store(head + 1)
	return r, true
}

// shardQueue is one directed cross-shard channel: a fixed SPSC ring
// plus a producer-owned overflow slice for bursts larger than the
// ring. Once overflow is non-empty every subsequent push goes there
// too, preserving FIFO order; the barrier drains ring first, then
// overflow, restoring the original push order. The overflow slice is
// written only by the producer during a window and read only by the
// coordinator at the barrier — the barrier's synchronization edge
// (WaitGroup) orders those accesses.
type shardQueue struct {
	ring     *spscRing
	overflow []remote
}

func newShardQueue(capacity int) *shardQueue {
	return &shardQueue{ring: newSPSCRing(capacity)}
}

// push enqueues r from the producer shard's goroutine.
func (q *shardQueue) push(r remote) {
	if len(q.overflow) > 0 || !q.ring.push(r) {
		q.overflow = append(q.overflow, r)
	}
}

// drain pops every queued record in FIFO order into fn. Coordinator
// side, shards parked. The barrier commit path uses commitQueue (one
// cursor store per drain, no callback); drain remains for callers that
// need per-record access.
func (q *shardQueue) drain(fn func(remote)) {
	for {
		r, ok := q.ring.pop()
		if !ok {
			break
		}
		fn(r)
	}
	for _, r := range q.overflow {
		fn(r)
	}
	q.overflow = q.overflow[:0]
}

// commitQueue schedules every record queued in q into destination
// engine e — ring first, then overflow, preserving push order — with a
// single consumer-cursor store per drain instead of one atomic store
// and one closure call per record. Coordinator side, shards parked.
// floor is the earliest admissible timestamp (see commitBatch).
// Returns the number of records committed.
func commitQueue(e *Engine, q *shardQueue, floor Time) uint64 {
	head, tail := q.ring.head.Load(), q.ring.tail.Load()
	n := tail - head
	if n > 0 {
		start := head & q.ring.mask
		first := uint64(len(q.ring.buf)) - start
		if first > n {
			first = n
		}
		commitBatch(e, q.ring.buf[start:start+first], floor)
		if n > first {
			commitBatch(e, q.ring.buf[:n-first], floor)
		}
		q.ring.head.Store(tail)
	}
	if len(q.overflow) > 0 {
		commitBatch(e, q.overflow, floor)
		n += uint64(len(q.overflow))
		q.overflow = q.overflow[:0]
	}
	return n
}

// commitBatch schedules one contiguous segment of records. A record
// before floor — after a window, anything at or before the destination
// shard's bound; after a global phase, anything before the phase time —
// means the sender broke its lookahead promise: the destination already
// ran past the record's instant. That panics loudly rather than
// silently reordering causality.
func commitBatch(e *Engine, batch []remote, floor Time) {
	for i := range batch {
		r := &batch[i]
		if r.at < floor {
			panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead: destination shard already ran to %v", r.at, floor))
		}
		e.ScheduleAction(r.at, r.act, r.a, r.b)
	}
}
