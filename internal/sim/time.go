// Package sim provides a deterministic discrete-event simulation engine —
// the core of the packet-level simulator the Quartz paper built for its
// §7 evaluation ("we implemented a packet level simulator").
//
// The engine drives every packet-level experiment in this repository. It
// maintains a virtual clock with picosecond resolution and a binary-heap
// event queue with deterministic FIFO tie-breaking, so a simulation run is
// a pure function of its inputs and seed. An EventProbe can observe the
// event loop, and Telemetry reports run throughput and the queue's
// high-water mark.
package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// Time is a point in virtual time, measured in integer picoseconds.
//
// Picoseconds are fine enough that the serialization time of any frame at
// any line rate used in the paper (1, 10, 40, 100 Gb/s) is an exact
// integer: one bit at 100 Gb/s is exactly 10 ps. int64 picoseconds cover
// about 106 days of virtual time, far beyond any experiment here.
type Time int64

// Duration constants, following the naming of the time package.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the "end of virtual time" sentinel: Run is RunUntil(MaxTime),
// RunUntil treats an end of MaxTime as "never clamp the clock", and queue
// scans use it as the identity for min-reductions. The value (2^62 − 1
// picoseconds, about 53 days) leaves headroom below the int64 limit so
// that end+1 window arithmetic and saturating lookahead additions cannot
// overflow.
const MaxTime = Time(1)<<62 - 1

// satAdd returns a+b, saturating at MaxTime — lookahead arithmetic on
// times that may already be the MaxTime sentinel.
func satAdd(a, b Time) Time {
	if c := a + b; c >= a && c < MaxTime {
		return c
	}
	return MaxTime
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns the time as a floating-point number of nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Duration converts t to a time.Duration, rounding to nanoseconds.
func (t Time) Duration() time.Duration {
	return time.Duration(t / Nanosecond * Time(time.Nanosecond))
}

// String formats the time with an appropriate SI unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration to a Time.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds()) * Nanosecond
}

// Rate is a data rate in bits per second.
type Rate int64

// Common line rates.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// String formats the rate with an appropriate SI unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Serialize returns the time to transmit size bytes at rate r.
// It panics if r is not positive.
func (r Rate) Serialize(sizeBytes int) Time {
	if r <= 0 {
		panic("sim: Serialize on non-positive rate")
	}
	bits := int64(sizeBytes) * 8
	// bits * ps-per-second / bits-per-second. bits is at most a few
	// hundred thousand for any real frame, so bits*1e12 fits in int64.
	return Time(bits * int64(Second) / int64(r))
}

// BytesIn returns how many bytes rate r can carry in duration d.
func (r Rate) BytesIn(d Time) int64 {
	if r < 0 || d < 0 {
		panic("sim: BytesIn with negative rate or duration")
	}
	// r*d can exceed int64 (10 Gb/s over one second is 1e22 bit-ps), so
	// compute the product in 128 bits before dividing back down.
	hi, lo := bits.Mul64(uint64(r), uint64(d))
	q, _ := bits.Div64(hi, lo, uint64(Second))
	return int64(q / 8)
}
