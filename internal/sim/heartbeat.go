package sim

// Heartbeat publishes the engine's own health into a metrics.Registry
// on a periodic simulation event: how much work the loop is doing
// (events/sec against the wall clock), how deep the calendar is, how
// far virtual time has advanced, and the virtual-vs-wall clock skew —
// the "is this multi-minute run making progress?" signals a live
// exporter serves. The tick runs inside the event loop, so publishing
// is single-threaded; readers (the HTTP endpoint) see atomic
// instrument state.

import (
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
)

// Heartbeat is an attached engine-metrics publisher. Create one with
// AttachHeartbeat before running the engine.
type Heartbeat struct {
	eng      *Engine
	interval Time

	events      *metrics.Counter
	pending     *metrics.Gauge
	peakPending *metrics.Gauge
	evRate      *metrics.Gauge
	virtual     *metrics.Gauge
	wall        *metrics.Gauge
	skew        *metrics.Gauge

	lastEvents uint64
	lastWall   time.Duration
	lastNow    Time

	// OnTick, if set, runs after each publish with the tick's virtual
	// time — the hook interval exporters (NDJSON snapshots) ride on.
	OnTick func(at Time)
}

// AttachHeartbeat registers the engine's instruments in r and schedules
// a publishing tick every interval of virtual time until the given
// time (inclusive, like QueueSampler.Start). Call before running the
// engine. The instruments:
//
//	sim_events_total          counter  events processed
//	sim_pending_events        gauge    calendar/heap size now
//	sim_peak_pending_events   gauge    calendar high-water mark
//	sim_events_per_sec        gauge    wall-clock rate over the last interval
//	sim_virtual_time_seconds  gauge    virtual clock
//	sim_wall_time_seconds     gauge    wall clock spent in the loop
//	sim_clock_skew            gauge    wall seconds per virtual second over
//	                                   the last interval (1 = real time)
func AttachHeartbeat(e *Engine, r *metrics.Registry, interval, until Time) *Heartbeat {
	return AttachHeartbeatLabeled(e, r, interval, until, nil)
}

// AttachHeartbeatLabeled is AttachHeartbeat with a fixed label set on
// every instrument. A sharded run attaches one heartbeat per shard
// engine with {"shard": i}, giving the exporter a per-shard series for
// each signal; the tick events themselves are shard-local, so shards
// publish independently without synchronizing.
func AttachHeartbeatLabeled(e *Engine, r *metrics.Registry, interval, until Time, labels metrics.Labels) *Heartbeat {
	if interval <= 0 {
		panic("sim: heartbeat interval must be positive")
	}
	h := &Heartbeat{
		eng:         e,
		interval:    interval,
		events:      r.Counter("sim_events_total", "simulation events processed", labels),
		pending:     r.Gauge("sim_pending_events", "events waiting in the calendar", labels),
		peakPending: r.Gauge("sim_peak_pending_events", "calendar high-water mark", labels),
		evRate:      r.Gauge("sim_events_per_sec", "wall-clock event rate over the last heartbeat interval", labels),
		virtual:     r.Gauge("sim_virtual_time_seconds", "virtual clock", labels),
		wall:        r.Gauge("sim_wall_time_seconds", "wall-clock time spent in the event loop", labels),
		skew:        r.Gauge("sim_clock_skew", "wall seconds per virtual second over the last heartbeat interval", labels),
	}
	var tick func()
	tick = func() {
		h.publish()
		if e.Now()+interval <= until {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
	return h
}

// publish copies the engine state into the instruments and advances the
// interval baselines.
func (h *Heartbeat) publish() {
	e := h.eng
	now := e.Now()
	wall := e.wallNow()

	events := e.Processed()
	h.events.Add(events - h.lastEvents)
	h.pending.Set(float64(e.Pending()))
	h.peakPending.Set(float64(e.peak))
	h.virtual.Set(now.Seconds())
	h.wall.Set(wall.Seconds())

	dWall := (wall - h.lastWall).Seconds()
	dVirtual := (now - h.lastNow).Seconds()
	if dWall > 0 {
		h.evRate.Set(float64(events-h.lastEvents) / dWall)
	}
	if dVirtual > 0 {
		h.skew.Set(dWall / dVirtual)
	}
	h.lastEvents = events
	h.lastWall = wall
	h.lastNow = now

	if h.OnTick != nil {
		h.OnTick(now)
	}
}
