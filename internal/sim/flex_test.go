package sim

import (
	"testing"

	"github.com/quartz-dcn/quartz/internal/metrics"
)

func TestFlexQueueBoundsAndOrder(t *testing.T) {
	var q flexQueue
	if at, dl := q.bounds(); at != MaxTime || dl != MaxTime {
		t.Fatalf("empty bounds = (%v, %v), want (MaxTime, MaxTime)", at, dl)
	}
	order := []int{}
	q.add(30*Nanosecond, 100*Nanosecond, func() { order = append(order, 3) })
	q.add(10*Nanosecond, 5*Nanosecond, func() { order = append(order, 1) })
	q.add(10*Nanosecond, 50*Nanosecond, func() { order = append(order, 2) })

	at, dl := q.bounds()
	if at != 10*Nanosecond {
		t.Fatalf("min nominal %v, want 10ns", at)
	}
	if dl != 15*Nanosecond {
		t.Fatalf("min deadline %v, want 15ns (10ns + 5ns tolerance)", dl)
	}

	// Nothing due before the earliest nominal time.
	if _, ok := q.popDue(9 * Nanosecond); ok {
		t.Fatal("popDue(9ns) returned an event before any nominal time")
	}
	// Due events pop in (nominal, schedule) order regardless of add order.
	for want := 1; want <= 3; want++ {
		fe, ok := q.popDue(30 * Nanosecond)
		if !ok {
			t.Fatalf("popDue ran dry before event %d", want)
		}
		fe.fn()
		if got := order[len(order)-1]; got != want {
			t.Fatalf("flex events popped out of order: got %d, want %d", got, want)
		}
	}
	if q.size() != 0 {
		t.Fatalf("queue size %d after draining, want 0", q.size())
	}
}

func TestFlexQueueSaturatingDeadline(t *testing.T) {
	var q flexQueue
	q.add(MaxTime-Nanosecond, Second, func() {})
	if _, dl := q.bounds(); dl != MaxTime {
		t.Fatalf("deadline %v, want saturation at MaxTime", dl)
	}
}

func TestScheduleFlexValidation(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	for name, fn := range map[string]func(){
		"negative tolerance": func() { s.ScheduleFlex(Nanosecond, -Nanosecond, func() {}) },
		"negative delay":     func() { s.AfterFlex(-Nanosecond, 0, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Engine-side ScheduleFlex rejects the same tolerance misuse.
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Engine.ScheduleFlex with negative tolerance did not panic")
			}
		}()
		e.ScheduleFlex(Nanosecond, -Nanosecond, func() {})
	}()
}

// TestFlexCoalescing pins the coalescing contract: three tickers with
// tolerance share one global phase per deadline interval instead of
// stopping the machine at each nominal instant, the observed tick
// times are deterministic, and they are identical for every shard
// count (and to the single-Engine ScheduleFlex schedule, which runs
// flex events exactly on time).
func TestFlexCoalescing(t *testing.T) {
	const end = 10 * Microsecond
	run := func(k int) (times []Time, phases, coalesced uint64) {
		s := NewShardedEngine(k, 250*Nanosecond, func(int) *Engine { return NewCalendarEngine() })
		// Local work so windows exist to fragment.
		for i := 0; i < k; i++ {
			e := s.Shard(i)
			var spin func()
			spin = func() {
				if e.Now() < end {
					e.After(100*Nanosecond, spin)
				}
			}
			e.After(0, spin)
		}
		for ticker := 0; ticker < 3; ticker++ {
			var tick func()
			tick = func() {
				times = append(times, s.Now())
				if s.Now()+Microsecond <= end {
					s.AfterFlex(Microsecond, 500*Nanosecond, tick)
				}
			}
			s.AfterFlex(Microsecond, 500*Nanosecond, tick)
		}
		s.RunUntil(end)
		return times, s.globalPhases, s.CoalescedGlobals()
	}

	base, phases1, _ := run(1)
	if len(base) == 0 {
		t.Fatal("no flex ticks ran")
	}
	for _, k := range []int{2, 4} {
		times, phases, coalesced := run(k)
		if len(times) != len(base) {
			t.Fatalf("K=%d ran %d ticks, K=1 ran %d", k, len(times), len(base))
		}
		for i := range times {
			if times[i] != base[i] {
				t.Fatalf("K=%d tick %d at %v, K=1 at %v: flex schedule must be K-independent", k, i, times[i], base[i])
			}
		}
		if phases != phases1 {
			t.Fatalf("K=%d used %d global phases, K=1 used %d", k, phases, phases1)
		}
		if coalesced == 0 {
			t.Fatalf("K=%d coalesced no ticks; three 1us tickers with 500ns tolerance must share phases", k)
		}
	}
}

// TestFlexZeroToleranceIsStrict: tol = 0 degenerates to the strict
// global schedule — every tick runs at exactly its nominal time.
func TestFlexZeroToleranceIsStrict(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	s.Shard(0).Schedule(10*Microsecond, func() {})
	var times []Time
	for i := 1; i <= 3; i++ {
		at := Time(i) * Microsecond
		s.ScheduleFlex(at, 0, func() { times = append(times, s.Now()) })
	}
	s.Run()
	for i, at := range times {
		if want := Time(i+1) * Microsecond; at != want {
			t.Fatalf("tick %d ran at %v, want exactly %v", i, at, want)
		}
	}
	if s.CoalescedGlobals() != 0 {
		t.Fatalf("coalesced %d with zero tolerance, want 0", s.CoalescedGlobals())
	}
}

// TestTracedRunMatchesBatched pins the epoch-batching equivalence: a
// traced run executes one stride per epoch (so the coordinator can
// stamp every window) while an untraced run batches strides into few
// epochs, and both must produce the identical event schedule.
func TestTracedRunMatchesBatched(t *testing.T) {
	run := func(traced bool) ([][]int64, uint64, uint64) {
		const prop = 250 * Nanosecond
		s := NewShardedEngine(4, prop, func(int) *Engine { return NewCalendarEngine() })
		if traced {
			s.AttachTrace(ShardedTraceOptions{Registry: metrics.NewRegistry()})
		}
		c := &chainAction{s: s, prop: prop, logs: make([][]int64, 4)}
		for i := 0; i < 4; i++ {
			s.Shard(i).ScheduleAction(Time(i)*Nanosecond, c, int64(i<<8|i), 50)
		}
		s.Run()
		return c.logs, s.Windows(), s.Strides()
	}
	batchedLogs, batchedWin, batchedStrides := run(false)
	tracedLogs, tracedWin, tracedStrides := run(true)
	if tracedWin != tracedStrides {
		t.Fatalf("traced run: %d epochs != %d strides; tracing must run one stride per epoch", tracedWin, tracedStrides)
	}
	if batchedStrides != tracedStrides {
		t.Fatalf("batched run executed %d strides, traced %d: the stride partition must not depend on batching", batchedStrides, tracedStrides)
	}
	if batchedWin >= tracedWin {
		t.Fatalf("batching paid %d epochs, traced %d: batching must reduce coordinator barriers", batchedWin, tracedWin)
	}
	for chain := range batchedLogs {
		if len(batchedLogs[chain]) != len(tracedLogs[chain]) {
			t.Fatalf("chain %d log lengths differ: %d batched vs %d traced", chain, len(batchedLogs[chain]), len(tracedLogs[chain]))
		}
		for i := range batchedLogs[chain] {
			if batchedLogs[chain][i] != tracedLogs[chain][i] {
				t.Fatalf("chain %d diverges at %d: %d batched vs %d traced", chain, i, batchedLogs[chain][i], tracedLogs[chain][i])
			}
		}
	}
}
