package sim

import (
	"testing"

	"github.com/quartz-dcn/quartz/internal/metrics"
)

func TestHeartbeatPublishes(t *testing.T) {
	e := NewEngine()
	r := metrics.NewRegistry()

	// A busy little workload: an event every microsecond for 1 ms.
	var work func()
	n := 0
	work = func() {
		n++
		if e.Now() < Millisecond {
			e.After(Microsecond, work)
		}
	}
	e.Schedule(0, work)

	hb := AttachHeartbeat(e, r, 100*Microsecond, Millisecond)
	ticks := 0
	var lastAt Time
	hb.OnTick = func(at Time) {
		ticks++
		lastAt = at
	}

	e.RunUntil(Millisecond)

	if ticks != 10 {
		t.Fatalf("heartbeat ticks = %d, want 10", ticks)
	}
	if lastAt != Millisecond {
		t.Fatalf("last tick at %v, want 1ms", lastAt)
	}
	snap := r.Snapshot()
	vals := map[string]float64{}
	for _, s := range snap.Series {
		vals[s.Name] = s.Value
	}
	// The counter reflects events as of the final tick; events scheduled
	// at the same instant but after the tick are not yet counted.
	if got := vals["sim_events_total"]; got < float64(e.Processed())-2 || got > float64(e.Processed()) {
		t.Errorf("sim_events_total = %v, want ~%v", got, e.Processed())
	}
	if got := vals["sim_virtual_time_seconds"]; got != Millisecond.Seconds() {
		t.Errorf("sim_virtual_time_seconds = %v, want %v", got, Millisecond.Seconds())
	}
	if vals["sim_events_per_sec"] <= 0 {
		t.Errorf("sim_events_per_sec = %v, want > 0", vals["sim_events_per_sec"])
	}
	if vals["sim_clock_skew"] <= 0 {
		t.Errorf("sim_clock_skew = %v, want > 0", vals["sim_clock_skew"])
	}
	if vals["sim_peak_pending_events"] <= 0 {
		t.Errorf("sim_peak_pending_events = %v, want > 0", vals["sim_peak_pending_events"])
	}
}

func TestHeartbeatBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval must panic")
		}
	}()
	AttachHeartbeat(NewEngine(), metrics.NewRegistry(), 0, Millisecond)
}

func TestTotalEventsAccumulates(t *testing.T) {
	before := TotalEvents()
	e := NewEngine()
	for i := 0; i < 25; i++ {
		e.After(Time(i)*Nanosecond, func() {})
	}
	e.Run()
	if got := TotalEvents() - before; got < 25 {
		t.Fatalf("TotalEvents grew by %d, want >= 25", got)
	}
}
