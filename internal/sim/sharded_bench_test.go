package sim

import (
	"testing"
)

// benchBounce bounces a single event around the shards until hops runs
// out — every hop crosses a shard boundary, so with no globals pending
// the whole run is one epoch and the per-hop cost is dominated by the
// stride barrier (one spin-barrier round plus the serial drain).
type benchBounce struct {
	s    *ShardedEngine
	prop Time
}

func (c *benchBounce) Run(shard, hops int64) {
	if hops == 0 {
		return
	}
	next := (int(shard) + 1) % c.s.Shards()
	c.s.Cross(int(shard), next, c.s.Shard(int(shard)).Now()+c.prop, c, int64(next), hops-1)
}

// BenchmarkStride measures the cheap path: one cross-shard hop per
// stride inside a single epoch on a 4-shard engine. ns/op is the cost
// of a stride — spin-barrier round trip, ring drain, bounds
// recomputation — plus one event. strides/op confirms the synchronizer
// paid exactly one stride per hop and epochs/op that the coordinator
// barrier was paid only once for the whole run.
func BenchmarkStride(b *testing.B) {
	const prop = 250 * Nanosecond
	s := NewShardedEngine(4, prop, func(int) *Engine { return NewCalendarEngine() })
	c := &benchBounce{s: s, prop: prop}
	s.Shard(0).ScheduleAction(0, c, 0, int64(b.N))
	w0, st0 := s.Windows(), s.Strides()
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	b.ReportMetric(float64(s.Strides()-st0)/float64(b.N), "strides/op")
	b.ReportMetric(float64(s.Windows()-w0)/float64(b.N), "epochs/op")
}

// BenchmarkBarrierRoundTrip measures the expensive path: every op runs
// one parallel window followed by one strict global event, so each op
// pays a full epoch — park/wake through the coordinator — plus a global
// phase. The delta against BenchmarkStride is the price the epoch
// batching avoids.
func BenchmarkBarrierRoundTrip(b *testing.B) {
	const prop = 250 * Nanosecond
	s := NewShardedEngine(4, prop, func(int) *Engine { return NewCalendarEngine() })
	nop := nopAction{}
	for i := 0; i < b.N; i++ {
		at := Time(i) * prop
		s.Shard(0).ScheduleAction(at, nop, 0, 0)
		s.ScheduleAction(at+prop/2, nop, 0, 0)
	}
	w0 := s.Windows()
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	b.ReportMetric(float64(s.Windows()-w0)/float64(b.N), "epochs/op")
}

type nopAction struct{}

func (nopAction) Run(_, _ int64) {}

// BenchmarkWindowsPerVirtualSecond quantifies window widening without
// multicore hardware: a synthetic 4-shard workload (4 concurrent
// bouncing chains, 250ns lookahead) runs for one virtual millisecond
// per op, and the reported windows/vsec and strides/vsec are the
// synchronizer's cost model — how many coordinator barriers and how
// many conservative windows one simulated second costs. Lower
// windows/vsec at equal strides/vsec is the epoch batching win; lower
// strides/vsec is genuine window widening (lookahead matrix or
// coalescing).
func BenchmarkWindowsPerVirtualSecond(b *testing.B) {
	const prop = 250 * Nanosecond
	const span = Millisecond
	var windows, strides uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewShardedEngine(4, prop, func(int) *Engine { return NewCalendarEngine() })
		c := &benchBounce{s: s, prop: prop}
		for j := 0; j < 4; j++ {
			// Effectively infinite hops; RunUntil bounds the run.
			s.Shard(j).ScheduleAction(Time(j)*Nanosecond, c, int64(j), 1<<40)
		}
		b.StartTimer()
		s.RunUntil(span)
		windows += s.Windows()
		strides += s.Strides()
	}
	b.StopTimer()
	vsecs := float64(span) / float64(Second) * float64(b.N)
	b.ReportMetric(float64(windows)/vsecs, "windows/vsec")
	b.ReportMetric(float64(strides)/vsecs, "strides/vsec")
}
