package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// ShardedEngine runs K independent Engines in parallel under a
// conservative (null-message-free) window synchronizer. It implements
// Scheduler, so code written against that interface runs unchanged on
// one core or K.
//
// The model: the caller partitions its simulation state into K shards,
// each owning one Engine, and promises that every cross-shard
// interaction is scheduled at least `lookahead` of virtual time into
// the future (for a network, the minimum cross-shard link propagation
// delay). The synchronizer repeatedly:
//
//  1. computes T, the minimum next-event time across all shards, and
//     G, the earliest pending global event;
//  2. if G <= T, parks every shard, advances all clocks to G, and runs
//     the global events at G single-threaded (fault injection and
//     other whole-network mutations use this phase);
//  3. otherwise opens the window [T, W) with W = min(T+lookahead, G),
//     and lets every shard process its events with timestamps < W in
//     parallel — safe because any cross-shard event produced inside
//     the window lands at or after T+lookahead >= W;
//  4. at the window barrier, drains the K*(K-1) SPSC rings in a fixed
//     order (source shard ascending, FIFO within each ring) and
//     commits the crossed events into their destination engines.
//
// Deadlock-freedom: every iteration either processes at least one
// event (the shard owning T always has one inside the window, and a
// global phase runs the event at G) or terminates because no events
// remain, so the loop always makes progress; there are no blocking
// channel waits between shards, only the barrier, which every worker
// reaches after a bounded batch of work.
//
// Determinism: window boundaries are pure functions of event
// timestamps, the drain order is fixed, and each Engine is itself
// deterministic, so a run's results depend only on the initial events
// and the shard partition — not on goroutine scheduling. Results are
// identical for every K >= 1 over the same partition-aware scheduling
// (see netsim: a K-shard run is byte-identical to the 1-shard sharded
// run). The one caveat: a crossed event that lands at exactly the same
// timestamp as a destination-local event breaks the tie by commit
// order rather than by the global schedule order a single engine would
// have used; with picosecond timestamps such collisions are measure
// zero, and the determinism tests pin the guarantee that matters
// (same output for every K).
type ShardedEngine struct {
	engines []*Engine
	look    Time
	rings   [][]*shardQueue // [src][dst]; nil on the diagonal
	globals *Engine         // events that run with all shards parked
	now     Time            // committed (synchronizer) time
	stopped atomic.Bool
	windows uint64 // parallel windows executed
	crossed uint64 // cross-shard events committed

	wall     time.Duration
	runStart time.Time
	running  atomic.Bool

	// Always-on window profiling (coordinator-only; see sharded_trace.go).
	winWall      time.Duration // wall time inside parallel windows
	busyWall     time.Duration // per-shard compute wall summed over windows
	globalPhases uint64        // all-shards-parked phases run
	ringHigh     uint64        // most events committed at one barrier

	// Pre-window per-shard snapshots, reused every window.
	ranBefore  []uint64
	wallBefore []time.Duration

	// Opt-in span recording and trace metrics (nil when detached).
	trc *shardedTrace
}

// workerPanic carries a shard goroutine's panic to the coordinator.
type workerPanic struct {
	shard int
	val   any
}

// crossRingCapacity is the per-directed-pair SPSC ring size. Bursts
// beyond it spill to the producer-owned overflow slice, so capacity is
// a fast-path tuning knob, not a correctness bound.
const crossRingCapacity = 1024

// NewShardedEngine builds a synchronizer over k shards with the given
// lookahead (must be positive: a zero lookahead admits no parallel
// window). newEngine constructs each shard's engine — use
// NewCalendarEngine for dense packet workloads.
func NewShardedEngine(k int, lookahead Time, newEngine func(shard int) *Engine) *ShardedEngine {
	if k < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", k))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs positive lookahead, got %v", lookahead))
	}
	s := &ShardedEngine{
		engines: make([]*Engine, k),
		look:    lookahead,
		rings:   make([][]*shardQueue, k),
		globals: NewEngine(),
	}
	for i := 0; i < k; i++ {
		s.engines[i] = newEngine(i)
		s.rings[i] = make([]*shardQueue, k)
		for j := 0; j < k; j++ {
			if j != i {
				s.rings[i][j] = newShardQueue(crossRingCapacity)
			}
		}
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.engines) }

// Shard returns shard i's engine. Schedule into it directly only
// during setup (before Run) or from shard i's own events; cross-shard
// scheduling during a run must go through Cross.
func (s *ShardedEngine) Shard(i int) *Engine { return s.engines[i] }

// Lookahead returns the synchronizer's conservative lookahead.
func (s *ShardedEngine) Lookahead() Time { return s.look }

// Now returns the committed global time: every shard has processed all
// its events strictly before this instant. Inside a global phase it
// equals the phase's timestamp.
func (s *ShardedEngine) Now() Time { return s.now }

// Schedule runs fn at absolute virtual time at as a global event: the
// synchronizer parks every shard, advances all clocks to at, and runs
// fn single-threaded, so fn may touch any shard's state. Use for
// whole-network mutations (fault injection, rerouting); per-shard work
// belongs on the shard's own engine. The boxing note on
// Engine.Schedule applies, but global phases are rare by construction.
func (s *ShardedEngine) Schedule(at Time, fn func()) { s.globals.Schedule(at, fn) }

// ScheduleAction is the Action form of Schedule; the event still runs
// as a global, all-shards-parked phase.
func (s *ShardedEngine) ScheduleAction(at Time, act Action, a, b int64) {
	s.globals.ScheduleAction(at, act, a, b)
}

// After runs fn as a global event delay after the committed time.
func (s *ShardedEngine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.globals.Schedule(s.now+delay, fn)
}

// AfterAction runs act as a global event delay after the committed time.
func (s *ShardedEngine) AfterAction(delay Time, act Action, a, b int64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.globals.ScheduleAction(s.now+delay, act, a, b)
}

// Cross schedules act on destination shard dst at absolute time at,
// from source shard src's goroutine during a window (src != dst). The
// record travels through the src→dst SPSC ring and is committed at the
// next barrier; conservative correctness requires at to be at least
// Lookahead() past the sending shard's current time, which holds
// whenever at is an arrival computed as now + propagation delay.
func (s *ShardedEngine) Cross(src, dst int, at Time, act Action, a, b int64) {
	s.rings[src][dst].push(remote{at: at, act: act, a: a, b: b})
}

// Stop halts the run at the next window boundary. Unlike Engine.Stop
// it is safe to call from any goroutine (e.g. a watchdog inside a
// shard's event, or a signal handler).
func (s *ShardedEngine) Stop() { s.stopped.Store(true) }

// Processed reports the total events run across all shards and the
// global queue.
func (s *ShardedEngine) Processed() uint64 {
	n := s.globals.Processed()
	for _, e := range s.engines {
		n += e.Processed()
	}
	return n
}

// Pending reports the events waiting across all shards, the global
// queue, and the cross-shard rings.
func (s *ShardedEngine) Pending() int {
	n := s.globals.Pending()
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// Windows reports how many parallel windows the synchronizer has run.
func (s *ShardedEngine) Windows() uint64 { return s.windows }

// Crossed reports how many cross-shard events have been committed.
func (s *ShardedEngine) Crossed() uint64 { return s.crossed }

// RingHighWater reports the most cross-shard events committed at any
// single barrier — the occupancy high-water mark of the SPSC rings
// (they are empty between phases, so the per-barrier drain count is
// the occupancy the rings actually reached).
func (s *ShardedEngine) RingHighWater() uint64 { return s.ringHigh }

// Telemetry aggregates the run across shards and carries the per-shard
// breakdown in Telemetry.Shards. The aggregate Wall is the
// synchronizer's wall time (not the per-shard sum), so
// EventsPerSecond reports true parallel throughput.
func (s *ShardedEngine) Telemetry() Telemetry {
	t := Telemetry{
		Events: s.globals.Processed(),
		Wall:   s.wallNow(),
		Shards: make([]ShardTelemetry, len(s.engines)),
	}
	for i, e := range s.engines {
		et := e.Telemetry()
		t.Events += et.Events
		t.PeakPending += et.PeakPending
		t.Shards[i] = ShardTelemetry{Shard: i, Events: et.Events, PeakPending: et.PeakPending, Wall: et.Wall}
	}
	return t
}

func (s *ShardedEngine) wallNow() time.Duration {
	if s.running.Load() {
		return s.wall + time.Since(s.runStart)
	}
	return s.wall
}

// Run processes events until every queue is empty or Stop is called.
func (s *ShardedEngine) Run() {
	s.RunUntil(Time(1)<<62 - 1)
}

// RunUntil processes events with timestamps <= end across all shards,
// then advances every clock to end — the same contract as
// Engine.RunUntil, executed in parallel windows. Shard goroutines live
// only for the duration of the call.
func (s *ShardedEngine) RunUntil(end Time) {
	s.stopped.Store(false)
	s.runStart = time.Now()
	s.running.Store(true)
	prevWin, prevBusy := s.winWall, s.busyWall
	prevWindows, prevGlobals, prevCrossed := s.windows, s.globalPhases, s.crossed
	defer func() {
		s.running.Store(false)
		s.wall += time.Since(s.runStart)
		s.foldProfile(prevWin, prevBusy, prevWindows, prevGlobals, prevCrossed)
	}()

	k := len(s.engines)
	if s.ranBefore == nil {
		s.ranBefore = make([]uint64, k)
		s.wallBefore = make([]time.Duration, k)
	}
	chans := make([]chan Time, k)
	var barrier sync.WaitGroup
	var failed atomic.Pointer[workerPanic]
	for i := 0; i < k; i++ {
		chans[i] = make(chan Time)
		go func(i int) {
			for w := range chans[i] {
				func() {
					defer func() {
						if p := recover(); p != nil {
							failed.Store(&workerPanic{shard: i, val: p})
						}
						barrier.Done()
					}()
					s.engines[i].RunUntil(w)
				}()
			}
		}(i)
	}
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
	}()

	const maxTime = Time(1)<<62 - 1
	for !s.stopped.Load() {
		// T: earliest shard event; G: earliest global event.
		T, G := maxTime, maxTime
		for _, e := range s.engines {
			if at, ok := e.NextEventAt(); ok && at < T {
				T = at
			}
		}
		if at, ok := s.globals.NextEventAt(); ok {
			G = at
		}
		next := T
		if G < next {
			next = G
		}
		if next == maxTime || next > end {
			break
		}

		if G <= T {
			// Global phase: park shards (they already are — we are
			// between windows), advance all clocks to G, run the
			// global events at <= G single-threaded.
			for _, e := range s.engines {
				e.advanceTo(G)
			}
			s.now = G
			if s.trc != nil && s.trc.rec.Enabled() {
				gStart := time.Now()
				ranBefore := s.globals.ran
				s.globals.RunUntil(G)
				s.trc.rec.Add(trace.Span{
					Name: "global", Cat: "engine", Track: trace.CoordinatorTrack,
					Virt: int64(G), VirtEnd: int64(G),
					Wall:    s.trc.rec.Since(gStart),
					WallDur: time.Since(gStart).Nanoseconds(),
				}.Annotate("events", int64(s.globals.ran-ranBefore)))
			} else {
				s.globals.RunUntil(G)
			}
			s.globalPhases++
		} else {
			// Parallel window [T, W): every cross-shard event produced
			// inside lands at >= T+lookahead >= W, so shards are
			// mutually invisible until the barrier.
			W := T + s.look
			if G < W {
				W = G
			}
			if end+1 < W {
				W = end + 1
			}
			winStart := time.Now()
			for i, e := range s.engines {
				s.ranBefore[i] = e.ran
				s.wallBefore[i] = e.wall
			}
			barrier.Add(k)
			for _, ch := range chans {
				ch <- W - 1
			}
			barrier.Wait()
			if p := failed.Load(); p != nil {
				panic(fmt.Sprintf("sim: shard %d panicked: %v", p.shard, p.val))
			}
			winWall := time.Since(winStart)
			s.winWall += winWall
			for i, e := range s.engines {
				s.busyWall += e.wall - s.wallBefore[i]
			}
			if s.trc != nil {
				s.traceWindow(T, W, winStart, winWall)
			}
			s.now = W - 1
			s.windows++
		}

		// Commit crossed events in a fixed total order: source shard
		// ascending, destination ascending, FIFO within a ring. Global
		// phases can cross too (a reconverging fault handler
		// re-forwarding a held packet over a cross-shard link), so the
		// drain runs after every phase, keeping the rings empty when T
		// is computed.
		var dStart time.Time
		if s.trc != nil && s.trc.rec.Enabled() {
			dStart = time.Now()
		}
		drained := uint64(0)
		for src := 0; src < k; src++ {
			for dst := 0; dst < k; dst++ {
				if q := s.rings[src][dst]; q != nil {
					e := s.engines[dst]
					q.drain(func(r remote) {
						e.ScheduleAction(r.at, r.act, r.a, r.b)
						drained++
					})
				}
			}
		}
		s.crossed += drained
		if drained > s.ringHigh {
			s.ringHigh = drained
		}
		if drained > 0 && s.trc != nil && s.trc.rec.Enabled() {
			s.trc.rec.Add(trace.Span{
				Name: "drain", Cat: "engine", Track: trace.CoordinatorTrack,
				Virt: int64(s.now), VirtEnd: int64(s.now),
				Wall:    s.trc.rec.Since(dStart),
				WallDur: time.Since(dStart).Nanoseconds(),
			}.Annotate("events", int64(drained)).Annotate("ring_high", int64(s.ringHigh)))
		}
	}

	// Mirror Engine.RunUntil: advance every clock to end.
	if end < maxTime {
		for _, e := range s.engines {
			if e.now < end {
				e.now = end
			}
		}
		if s.globals.now < end {
			s.globals.now = end
		}
		if s.now < end {
			s.now = end
		}
	}
}
