package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// ShardedEngine runs K independent Engines in parallel under a
// conservative (null-message-free) window synchronizer. It implements
// Scheduler, so code written against that interface runs unchanged on
// one core or K.
//
// The model: the caller partitions its simulation state into K shards,
// each owning one Engine, and promises that a cross-shard interaction
// sent from shard i to shard j is scheduled at least Look(i, j) of
// virtual time into the future (for a network, the minimum propagation
// delay plus the provable transmit floor over the links from i to j).
//
// Execution is two-level. The outer level is the coordinator loop: it
// computes each shard's earliest pending event time T_i (T is their
// minimum), the earliest strict global event G, and the earliest flex
// deadline D (see ScheduleFlex); the stop bound is min(G, D). If
// stop <= T it runs a global phase — every shard parked, all clocks
// advanced to P = min(stop, end), due flex events and strict globals
// executed single-threaded (fault injection and other whole-network
// mutations use this phase). Otherwise it releases one *epoch*: the
// parked shard goroutines wake and execute parallel windows until the
// frontier reaches the stop bound or the horizon.
//
// The inner level is the stride loop, run by the shard workers inside
// an epoch with no coordinator involvement. Each stride is one
// conservative window: shard j runs to
//
//	W_j = min over i of (T_i + dist(i, j))
//
// additionally capped by the epoch's stop bound, the horizon end+1, and
// T+WindowCap(). dist is the shortest-path closure of the lookahead
// matrix (diagonal = the cheapest cycle through the shard): any event
// that will ever land on j descends from some event pending now on some
// shard i, and every cross-shard hop on the way adds at least its
// edge's lookahead, so the descendant's time is >= T_i + dist(i, j) >=
// W_j. The closure — not the direct edge — is what makes the bound
// sound across strides: a shard whose direct peers are quiet may still
// be reached through them a few hops later. At the end of a stride the
// workers meet at a sense-reversing spin barrier; the last arriver runs
// the serial section — drain the K*(K-1) SPSC rings in a fixed order
// (source shard ascending, FIFO within each ring), commit the crossed
// events, recompute every T_i, and either publish the next stride's
// bounds or mark the epoch done — then flips the barrier sense to
// release the rest. A stride therefore costs one atomic decrement per
// shard plus one serial pass, with every goroutine staying hot; the
// expensive park/wake round trip through the runtime (channel close,
// K channel receives, arrival countdown, done send) is paid only per
// epoch, at the global stops that genuinely require the coordinator.
// Workloads with few globals synchronize almost entirely through the
// spin barrier: Windows() (epochs) collapses to the global-phase rate
// while Strides() keeps counting the real conservative windows.
//
// Deadlock-freedom: every stride processes at least one event (the
// shard owning T always has one inside its window, since W_T > T, and a
// phase runs at least one due flex or strict global), so the loop
// always makes progress; an epoch's serial section leaves as soon as
// the frontier hits a bound the coordinator must handle.
//
// Determinism: stride and phase boundaries are pure functions of event
// timestamps and the lookahead matrix, the drain order is fixed, and
// each Engine is itself deterministic, so a run's results depend only
// on the initial events and the shard partition — not on goroutine
// scheduling, the shard count, or how strides are batched into epochs
// (attaching a trace, which runs one stride per epoch to keep span
// accounting exact, does not change the schedule). The one caveat: a
// crossed event that lands at exactly the same timestamp as a
// destination-local event breaks the tie by commit order rather than by
// the global schedule order a single engine would have used; with
// picosecond timestamps such collisions are measure zero, and the
// determinism tests pin the guarantee that matters (same output for
// every K).
type ShardedEngine struct {
	engines []*Engine
	// look[i][j] is the lookahead promise for events sent from shard i
	// to shard j; 0 means no direct path (unconstrained). dist is its
	// shortest-path closure (MaxTime = unreachable; the diagonal is the
	// cheapest cycle back to the shard), the bound windows actually use.
	look      [][]Time
	dist      [][]Time
	minLook   Time            // smallest positive look entry
	maxWin    Time            // cap on a stride's extent past T (Stop latency bound)
	rings     [][]*shardQueue // [src][dst]; nil on the diagonal
	globals   *Engine         // strict events that run with all shards parked
	flex      flexQueue       // coalescible globals (see flex.go)
	now       Time            // committed (synchronizer) time
	stopped   atomic.Bool
	windows   uint64 // epochs released (park/wake barrier round trips)
	strides   uint64 // conservative windows executed (>= windows)
	crossed   uint64 // cross-shard events committed
	flexRan   uint64 // flex events executed
	coalesced uint64 // flex events that ran after their nominal time

	wall     time.Duration
	runStart time.Time
	running  atomic.Bool

	// Always-on window profiling (see sharded_trace.go).
	winWall      time.Duration // wall time inside epochs
	globalPhases uint64        // all-shards-parked phases run
	ringHigh     uint64        // most events committed at one barrier

	// Per-shard scratch, reused every stride. nexts holds T_i; bounds
	// holds each shard's window end W_i - 1 and is the hand-off read by
	// the workers.
	nexts  []Time
	bounds []Time

	// Pre-window per-shard snapshots, populated only while a trace is
	// attached (hoisted off the window fast path otherwise).
	ranBefore  []uint64
	wallBefore []time.Duration

	// Epoch machinery, owned by RunUntil. batching is false while a
	// trace is attached (one stride per epoch keeps the span accounting
	// exact); epochStop/epochEnd/epochHorizon freeze the bounds the
	// serial section tests (globals and flex cannot change mid-epoch:
	// they may only be scheduled from coordinator contexts); leave is
	// the serial section's end-of-epoch signal, published by the barrier
	// release.
	batching     bool
	leave        bool
	epochStop    Time
	epochEnd     Time
	epochHorizon Time
	sb           spinBarrier
	arrive       atomic.Int32
	failed       atomic.Pointer[workerPanic]
	done         chan struct{}

	// Opt-in span recording and trace metrics (nil when detached).
	trc *shardedTrace
}

// workerPanic carries a shard goroutine's panic to the coordinator.
// shard is -1 when the panic escaped the barrier serial section rather
// than a shard's own events (e.g. a lookahead violation caught while
// committing crossed events).
type workerPanic struct {
	shard int
	val   any
}

// epoch is one coordinator round of the epoch barrier. The coordinator
// writes the first stride's bounds and the next epoch pointer, then
// closes wake — one broadcast that releases every parked worker.
// Workers stride until the serial section marks the epoch done, then
// decrement the shared arrival counter and move to next; the last
// arrival sends once on the coordinator's done channel.
type epoch struct {
	wake chan struct{}
	next *epoch // published before wake is closed
	quit bool
}

// spinBarrier synchronizes the shard workers between strides without
// waking the coordinator: arrive returns true in exactly one worker
// (the last to arrive), which runs the serial section and then calls
// release. The others spin on the generation counter — a few hot loads,
// then cooperative yields, so the barrier stays correct (if slower)
// even with GOMAXPROCS below the shard count. All operations are on
// Go atomics, so the serial section's plain writes happen-before the
// released workers' reads.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *spinBarrier) reset(n int) {
	b.n = int32(n)
	b.count.Store(int32(n))
}

func (b *spinBarrier) arrive() bool {
	g := b.gen.Load() // before the decrement: the flip needs our arrival
	if b.count.Add(-1) == 0 {
		return true
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins > 32 {
			runtime.Gosched()
		}
	}
	return false
}

func (b *spinBarrier) release() {
	b.count.Store(b.n) // re-arm before the flip frees the waiters
	b.gen.Add(1)
}

// crossRingCapacity is the per-directed-pair SPSC ring size. Bursts
// beyond it spill to the producer-owned overflow slice, so capacity is
// a fast-path tuning knob, not a correctness bound.
const crossRingCapacity = 1024

// DefaultWindowCap bounds how far past the global minimum T any
// shard's stride may extend when the lookahead matrix and pending
// globals leave it unconstrained (peers quiet, nothing to stop for).
// The cap is what keeps Stop() — the watchdog and signal-handler path —
// responsive: a stop request takes effect at the next stride barrier,
// so the cap is the most virtual time a single stride can swallow.
const DefaultWindowCap = Millisecond

// NewShardedEngine builds a synchronizer over k shards with a uniform
// lookahead (must be positive: a zero lookahead admits no parallel
// window). newEngine constructs each shard's engine — use
// NewCalendarEngine for dense packet workloads. For heterogeneous
// topologies, refine the uniform matrix with SetLookahead.
func NewShardedEngine(k int, lookahead Time, newEngine func(shard int) *Engine) *ShardedEngine {
	if k < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", k))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs positive lookahead, got %v", lookahead))
	}
	s := &ShardedEngine{
		engines: make([]*Engine, k),
		look:    make([][]Time, k),
		minLook: lookahead,
		maxWin:  DefaultWindowCap,
		rings:   make([][]*shardQueue, k),
		globals: NewEngine(),
	}
	if s.maxWin < lookahead {
		s.maxWin = lookahead
	}
	for i := 0; i < k; i++ {
		s.engines[i] = newEngine(i)
		s.look[i] = make([]Time, k)
		s.rings[i] = make([]*shardQueue, k)
		for j := 0; j < k; j++ {
			if j != i {
				s.look[i][j] = lookahead
				s.rings[i][j] = newShardQueue(crossRingCapacity)
			}
		}
	}
	s.dist = closure(s.look)
	return s
}

// closure returns the all-pairs shortest-path closure of the lookahead
// matrix under saturating min-plus (Floyd–Warshall): d[i][j] is the
// least total lookahead along any multi-hop shard path i→…→j, MaxTime
// when unreachable. The diagonal starts at MaxTime, not zero, so
// d[j][j] comes out as the cheapest cycle through j — the earliest a
// shard's own pending work can come back to bite it.
func closure(look [][]Time) [][]Time {
	k := len(look)
	d := make([][]Time, k)
	for i := range look {
		d[i] = make([]Time, k)
		for j, v := range look[i] {
			if i != j && v > 0 {
				d[i][j] = v
			} else {
				d[i][j] = MaxTime
			}
		}
	}
	for m := 0; m < k; m++ {
		for i := 0; i < k; i++ {
			if d[i][m] == MaxTime {
				continue
			}
			for j := 0; j < k; j++ {
				if via := satAdd(d[i][m], d[m][j]); via < d[i][j] {
					d[i][j] = via
				}
			}
		}
	}
	return d
}

// SetLookahead replaces the uniform lookahead with a per-shard-pair
// matrix: m[i][j] is the promise for events sent from shard i to shard
// j (Cross(i, j, at, ...) requires at >= sender time + m[i][j]). A zero
// entry means no direct i→j path — that pair never constrains a
// window (windows are bounded by the shortest-path closure of the
// matrix, so indirect reachability is handled soundly). Diagonal
// entries are ignored. Call before running; the matrix must not
// understate any path or windows would admit causality violations (the
// barrier drain panics on any committed event that proves it).
func (s *ShardedEngine) SetLookahead(m [][]Time) {
	k := len(s.engines)
	if len(m) != k {
		panic(fmt.Sprintf("sim: lookahead matrix is %dx?, want %dx%d", len(m), k, k))
	}
	look := make([][]Time, k)
	min := MaxTime
	for i := range m {
		if len(m[i]) != k {
			panic(fmt.Sprintf("sim: lookahead matrix row %d has %d entries, want %d", i, len(m[i]), k))
		}
		look[i] = make([]Time, k)
		for j, v := range m[i] {
			if i == j {
				continue
			}
			if v < 0 {
				panic(fmt.Sprintf("sim: negative lookahead %v for shard pair %d->%d", v, i, j))
			}
			look[i][j] = v
			if v > 0 && v < min {
				min = v
			}
		}
	}
	s.look = look
	s.dist = closure(look)
	if min < MaxTime {
		s.minLook = min
	}
	if s.maxWin < s.minLook {
		s.maxWin = s.minLook
	}
}

// SetWindowCap bounds how much virtual time one stride may cover (the
// Stop-latency knob; see DefaultWindowCap). Must be positive and at
// least the minimum lookahead.
func (s *ShardedEngine) SetWindowCap(c Time) {
	if c < s.minLook {
		panic(fmt.Sprintf("sim: window cap %v below minimum lookahead %v", c, s.minLook))
	}
	s.maxWin = c
}

// WindowCap returns the per-stride virtual-time cap.
func (s *ShardedEngine) WindowCap() Time { return s.maxWin }

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.engines) }

// Shard returns shard i's engine. Schedule into it directly only
// during setup (before Run) or from shard i's own events; cross-shard
// scheduling during a run must go through Cross.
func (s *ShardedEngine) Shard(i int) *Engine { return s.engines[i] }

// Lookahead returns the smallest positive per-pair lookahead — the
// tightest promise any cross-shard path makes.
func (s *ShardedEngine) Lookahead() Time { return s.minLook }

// Look returns the lookahead promise for events sent from shard src to
// shard dst (0 means the pair has no direct path and never constrains
// a window).
func (s *ShardedEngine) Look(src, dst int) Time { return s.look[src][dst] }

// Now returns the committed global time: every shard has processed all
// its events strictly before this instant. Inside a global phase it
// equals the phase's timestamp.
func (s *ShardedEngine) Now() Time { return s.now }

// Schedule runs fn at absolute virtual time at as a strict global
// event: the synchronizer parks every shard, advances all clocks to at,
// and runs fn single-threaded, so fn may touch any shard's state. Use
// for whole-network mutations (fault injection, rerouting); per-shard
// work belongs on the shard's own engine, and periodic observability
// that can tolerate slack belongs on ScheduleFlex. The boxing note on
// Engine.Schedule applies, but global phases are rare by construction.
func (s *ShardedEngine) Schedule(at Time, fn func()) { s.globals.Schedule(at, fn) }

// ScheduleAction is the Action form of Schedule; the event still runs
// as a global, all-shards-parked phase.
func (s *ShardedEngine) ScheduleAction(at Time, act Action, a, b int64) {
	s.globals.ScheduleAction(at, act, a, b)
}

// After runs fn as a strict global event delay after the committed time.
func (s *ShardedEngine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.globals.Schedule(s.now+delay, fn)
}

// AfterAction runs act as a global event delay after the committed time.
func (s *ShardedEngine) AfterAction(delay Time, act Action, a, b int64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.globals.ScheduleAction(s.now+delay, act, a, b)
}

// ScheduleFlex runs fn as a coalescible global event: like Schedule it
// executes single-threaded with every shard parked, but it may run up
// to tol of virtual time after at, batched with other global work into
// one phase (see flex.go for the batching rule). Periodic heartbeats
// and samplers should use this form — with a tolerance, N tickers cost
// one stop per tolerance interval instead of fragmenting every
// prospective window. The execution time is deterministic and
// identical for every shard count; tol = 0 degenerates to the strict
// schedule. Like Schedule, call only during setup or from global
// events, never from a shard's own events mid-run.
func (s *ShardedEngine) ScheduleFlex(at, tol Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if tol < 0 {
		panic(fmt.Sprintf("sim: negative coalescing tolerance %v", tol))
	}
	s.flex.add(at, tol, fn)
}

// AfterFlex is ScheduleFlex with a delay relative to the committed time.
func (s *ShardedEngine) AfterFlex(delay, tol Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.ScheduleFlex(s.now+delay, tol, fn)
}

// Cross schedules act on destination shard dst at absolute time at,
// from source shard src's goroutine during a window (src != dst). The
// record travels through the src→dst SPSC ring and is committed at the
// next barrier; conservative correctness requires at to be at least
// Look(src, dst) past the sending shard's current time, which holds
// whenever at is an arrival computed as now + transmit floor +
// propagation delay. The barrier drain panics if a committed record
// proves the promise was broken.
func (s *ShardedEngine) Cross(src, dst int, at Time, act Action, a, b int64) {
	s.rings[src][dst].push(remote{at: at, act: act, a: a, b: b})
}

// Stop halts the run at the next stride boundary. Unlike Engine.Stop
// it is safe to call from any goroutine (e.g. a watchdog inside a
// shard's event, or a signal handler). WindowCap bounds how much
// virtual time may elapse before the request is honored.
func (s *ShardedEngine) Stop() { s.stopped.Store(true) }

// Processed reports the total events run across all shards, the global
// queue, and the flex queue.
func (s *ShardedEngine) Processed() uint64 {
	n := s.globals.Processed() + s.flexRan
	for _, e := range s.engines {
		n += e.Processed()
	}
	return n
}

// Pending reports the events waiting across all shards, the global
// queue, and the flex queue.
func (s *ShardedEngine) Pending() int {
	n := s.globals.Pending() + s.flex.size()
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// Windows reports how many epochs the synchronizer has released — the
// park/wake barrier round trips through the coordinator, the expensive
// synchronization the run actually paid. Strides counts the
// conservative windows executed inside them.
func (s *ShardedEngine) Windows() uint64 { return s.windows }

// Strides reports how many conservative parallel windows (strides) the
// synchronizer has executed. Each stride beyond the first in an epoch
// cost only a spin-barrier round among the shard workers, not a
// coordinator wake: Strides − Windows is the synchronization the epoch
// batching saved.
func (s *ShardedEngine) Strides() uint64 { return s.strides }

// Crossed reports how many cross-shard events have been committed.
func (s *ShardedEngine) Crossed() uint64 { return s.crossed }

// CoalescedGlobals reports how many flex events ran after their nominal
// time — global stops saved by coalescing (each would otherwise have
// fragmented an epoch at its exact nominal instant).
func (s *ShardedEngine) CoalescedGlobals() uint64 { return s.coalesced }

// RingHighWater reports the most cross-shard events committed at any
// single barrier — the occupancy high-water mark of the SPSC rings
// (they are empty between strides, so the per-barrier drain count is
// the occupancy the rings actually reached).
func (s *ShardedEngine) RingHighWater() uint64 { return s.ringHigh }

// Telemetry aggregates the run across shards and carries the per-shard
// breakdown in Telemetry.Shards. The aggregate Wall is the
// synchronizer's wall time (not the per-shard sum), so
// EventsPerSecond reports true parallel throughput.
func (s *ShardedEngine) Telemetry() Telemetry {
	t := Telemetry{
		Events: s.globals.Processed() + s.flexRan,
		Wall:   s.wallNow(),
		Shards: make([]ShardTelemetry, len(s.engines)),
	}
	for i, e := range s.engines {
		et := e.Telemetry()
		t.Events += et.Events
		t.PeakPending += et.PeakPending
		t.Shards[i] = ShardTelemetry{Shard: i, Events: et.Events, PeakPending: et.PeakPending, Wall: et.Wall}
	}
	return t
}

func (s *ShardedEngine) wallNow() time.Duration {
	if s.running.Load() {
		return s.wall + time.Since(s.runStart)
	}
	return s.wall
}

// shardBusy sums the shard engines' accumulated compute wall time.
// Shard engines only run inside epochs, so this is in-window compute;
// coordinator-only (phases or between epochs).
func (s *ShardedEngine) shardBusy() time.Duration {
	var d time.Duration
	for _, e := range s.engines {
		d += e.wall
	}
	return d
}

// Run processes events until every queue is empty or Stop is called.
func (s *ShardedEngine) Run() {
	s.RunUntil(MaxTime)
}

// RunUntil processes events with timestamps <= end across all shards,
// then advances every clock to end — the same contract as
// Engine.RunUntil, executed in parallel windows. Shard goroutines live
// only for the duration of the call, parked on the epoch barrier
// between epochs.
func (s *ShardedEngine) RunUntil(end Time) {
	s.stopped.Store(false)
	s.runStart = time.Now()
	s.running.Store(true)
	startNow := s.now
	prevWin, prevBusy := s.winWall, s.shardBusy()
	prevWindows, prevStrides := s.windows, s.strides
	prevGlobals := s.globalPhases
	prevCrossed, prevCoalesced := s.crossed, s.coalesced
	defer func() {
		s.running.Store(false)
		s.wall += time.Since(s.runStart)
		s.foldProfile(profileBase{
			winWall: prevWin, busy: prevBusy, windows: prevWindows,
			strides: prevStrides, globals: prevGlobals,
			crossed: prevCrossed, coalesced: prevCoalesced,
		}, s.now-startNow)
	}()

	k := len(s.engines)
	if s.nexts == nil {
		s.nexts = make([]Time, k)
		s.bounds = make([]Time, k)
		s.ranBefore = make([]uint64, k)
		s.wallBefore = make([]time.Duration, k)
	}

	// Epoch barrier: K workers parked on cur.wake. Releasing an epoch
	// writes the stride state, arms the arrival counter, and closes
	// wake; the happens-before edges are close(wake) (coordinator
	// writes → worker reads) and the final arrive decrement plus done
	// send (worker writes → coordinator reads). Tracing runs one stride
	// per epoch so the coordinator can stamp every window's wall time.
	s.batching = s.trc == nil
	s.failed.Store(nil)
	s.done = make(chan struct{}, 1)
	cur := &epoch{wake: make(chan struct{})}
	for i := 0; i < k; i++ {
		go s.shardWorker(i, cur)
	}
	defer func() {
		// Retire the workers: the epoch they are parked on (or will
		// move to) is released with quit set.
		cur.quit = true
		close(cur.wake)
	}()

	horizon := end
	if horizon < MaxTime {
		horizon++
	}

	for !s.stopped.Load() {
		// T_i: each shard's earliest event (T their minimum); G: the
		// earliest strict global; F/D: the earliest flex event and the
		// earliest flex deadline.
		T := MaxTime
		for i, e := range s.engines {
			if at, ok := e.NextEventAt(); ok {
				s.nexts[i] = at
				if at < T {
					T = at
				}
			} else {
				s.nexts[i] = MaxTime
			}
		}
		G := MaxTime
		if at, ok := s.globals.NextEventAt(); ok {
			G = at
		}
		F, D := s.flex.bounds()
		next := T
		if G < next {
			next = G
		}
		if F < next {
			next = F
		}
		if next == MaxTime || next > end {
			break
		}

		// stop: the latest instant strides may run up to before global
		// work must execute — the next strict global, or the tightest
		// flex deadline, whichever is earlier.
		stop := G
		if D < stop {
			stop = D
		}

		window := !(stop <= T || T > end)
		if window {
			s.runEpoch(k, T, stop, horizon, end, &cur)
			if s.batching {
				// The serial section drained the rings before it marked
				// the epoch done; nothing is in flight here.
				continue
			}
		} else {
			// Global phase: park shards (they already are — we are
			// between epochs), advance all clocks to P, run every due
			// flex event and the strict globals at <= P single-threaded.
			P := stop
			if end < P {
				P = end
			}
			s.runGlobalPhase(P)
		}

		// Commit crossed events in a fixed total order: source shard
		// ascending, destination ascending, FIFO within a ring. Global
		// phases can cross too (a reconverging fault handler
		// re-forwarding a held packet over a cross-shard link), so the
		// drain runs after every phase, keeping the rings empty when T
		// is computed.
		s.commitCrossed(k, window)
	}

	// Mirror Engine.RunUntil: advance every clock to end.
	if end < MaxTime {
		for _, e := range s.engines {
			if e.now < end {
				e.now = end
			}
		}
		if s.globals.now < end {
			s.globals.now = end
		}
		if s.now < end {
			s.now = end
		}
	}
}

// shardWorker is one shard's goroutine for the duration of a RunUntil
// call: wait for the epoch release, stride until the serial section
// marks the epoch done, arrive at the epoch barrier, move to the next
// epoch. A panic inside the shard is captured for the coordinator and
// still counts as an arrival, so neither barrier ever wedges.
func (s *ShardedEngine) shardWorker(i int, ep *epoch) {
	for {
		<-ep.wake
		if ep.quit {
			return
		}
		next := ep.next
		for {
			s.runShard(i)
			if !s.batching {
				break
			}
			if s.sb.arrive() {
				s.leave = s.strideSerial()
				s.sb.release()
			}
			if s.leave {
				break
			}
		}
		if s.arrive.Add(-1) == 0 {
			s.done <- struct{}{}
		}
		ep = next
	}
}

// runShard runs shard i through its published stride bound, converting
// a panic into a recorded failure (the serial section and coordinator
// check it).
func (s *ShardedEngine) runShard(i int) {
	defer func() {
		if p := recover(); p != nil {
			s.failed.CompareAndSwap(nil, &workerPanic{shard: i, val: p})
		}
	}()
	s.engines[i].RunUntil(s.bounds[i])
}

// strideSerial is the spin barrier's serial section, executed by the
// last-arriving worker with every other worker spinning (so it has
// exclusive access to all engines and rings, with happens-before edges
// through the barrier atomics). It commits the stride's crossed events,
// recomputes the frontier, and either publishes the next stride's
// bounds (returning false) or marks the epoch done (returning true) —
// the same decision the coordinator makes, against the epoch's frozen
// stop bound. Globals and flex events cannot be scheduled from shard
// events, so the bounds frozen at epoch release stay exact.
func (s *ShardedEngine) strideSerial() (leave bool) {
	defer func() {
		if p := recover(); p != nil {
			s.failed.CompareAndSwap(nil, &workerPanic{shard: -1, val: p})
			leave = true
		}
	}()
	s.commitCrossed(len(s.engines), true)
	if s.stopped.Load() || s.failed.Load() != nil {
		return true
	}
	T := MaxTime
	for i, e := range s.engines {
		if at, ok := e.NextEventAt(); ok {
			s.nexts[i] = at
			if at < T {
				T = at
			}
		} else {
			s.nexts[i] = MaxTime
		}
	}
	if s.epochStop <= T || T > s.epochEnd {
		return true
	}
	minW := s.computeBounds(T, s.epochStop, s.epochHorizon)
	s.now = minW - 1
	s.strides++
	return false
}

// computeBounds writes every shard's stride bound W_j − 1 into s.bounds
// from the current s.nexts and returns the minimum W_j. Per-shard LBTS
// over the lookahead closure: shard j may run to the earliest instant
// any pending event anywhere — including its own, routed back through a
// cycle — could cause something to land on it, capped by the stop
// bound, the horizon, and the window cap. Every dist entry is positive,
// so W_j > T for the shard owning T and every stride makes progress.
func (s *ShardedEngine) computeBounds(T, stop, horizon Time) Time {
	capW := satAdd(T, s.maxWin)
	minW := MaxTime
	for j := range s.engines {
		W := capW
		for i := range s.engines {
			if b := satAdd(s.nexts[i], s.dist[i][j]); b < W {
				W = b
			}
		}
		if stop < W {
			W = stop
		}
		if horizon < W {
			W = horizon
		}
		s.bounds[j] = W - 1
		if W < minW {
			minW = W
		}
	}
	return minW
}

// runEpoch publishes the first stride's bounds, releases one epoch, and
// waits for the workers to stride up to the stop bound. T is the global
// minimum event time, stop the frozen global stop bound, horizon end+1.
func (s *ShardedEngine) runEpoch(k int, T, stop, horizon, end Time, cur **epoch) {
	minW := s.computeBounds(T, stop, horizon)

	tracing := s.trc != nil
	winStart := time.Now()
	if tracing {
		for i, e := range s.engines {
			s.ranBefore[i] = e.ran
			s.wallBefore[i] = e.wall
		}
	}

	s.epochStop = stop
	s.epochEnd = end
	s.epochHorizon = horizon
	s.leave = false
	s.now = minW - 1
	s.strides++
	s.sb.reset(k)

	// Release the epoch: publish the next epoch, arm the arrival
	// counter, broadcast with one close, and wait for the last shard's
	// single done send.
	c := *cur
	nxt := &epoch{wake: make(chan struct{})}
	c.next = nxt
	s.arrive.Store(int32(k))
	close(c.wake)
	*cur = nxt
	<-s.done
	if p := s.failed.Load(); p != nil {
		if p.shard < 0 {
			panic(fmt.Sprintf("sim: barrier serial section panicked: %v", p.val))
		}
		panic(fmt.Sprintf("sim: shard %d panicked: %v", p.shard, p.val))
	}

	winWall := time.Since(winStart)
	s.winWall += winWall
	if tracing {
		s.traceWindow(T, minW, winStart, winWall)
	}
	s.windows++
}

// runGlobalPhase advances every clock to P and runs the due flex
// events and strict globals at <= P single-threaded, to fixpoint (a
// global may schedule further globals at <= P). Flex events run in
// (nominal time, schedule order) before strict globals sharing the
// phase instant — a strict global inside the phase span can only be at
// exactly P, never earlier than a due flex event's nominal time.
func (s *ShardedEngine) runGlobalPhase(P Time) {
	for _, e := range s.engines {
		e.advanceTo(P)
	}
	s.now = P
	tracing := s.trc != nil && s.trc.rec.Enabled()
	var gStart time.Time
	var ranBefore uint64
	if tracing {
		gStart = time.Now()
		ranBefore = s.globals.ran + s.flexRan
	}
	for {
		ran := false
		for {
			fe, ok := s.flex.popDue(P)
			if !ok {
				break
			}
			if fe.at < P {
				s.coalesced++
			}
			s.flexRan++
			fe.fn()
			ran = true
		}
		if g, ok := s.globals.NextEventAt(); ok && g <= P {
			s.globals.RunUntil(P)
			ran = true
		}
		if !ran {
			break
		}
	}
	// Keep the strict queue's clock at the phase time even when only
	// flex events ran, so stale-time scheduling fails fast.
	if s.globals.now < P {
		s.globals.now = P
	}
	if tracing {
		s.trc.rec.Add(trace.Span{
			Name: "global", Cat: "engine", Track: trace.CoordinatorTrack,
			Virt: int64(P), VirtEnd: int64(P),
			Wall:    s.trc.rec.Since(gStart),
			WallDur: time.Since(gStart).Nanoseconds(),
		}.Annotate("events", int64(s.globals.ran+s.flexRan-ranBefore)))
	}
	s.globalPhases++
}

// commitCrossed drains every SPSC ring into its destination engine —
// one batched pass per directed pair, one consumer-cursor store per
// ring instead of one per record. window says whether the rings were
// filled by a parallel stride (destination already ran through its
// bound, so committed events must land strictly beyond it) or a global
// phase (events at the phase instant are still admissible). Callers:
// the stride serial section (batching) and the coordinator (global
// phases and traced single-stride epochs).
func (s *ShardedEngine) commitCrossed(k int, window bool) {
	var dStart time.Time
	tracing := s.trc != nil && s.trc.rec.Enabled()
	if tracing {
		dStart = time.Now()
	}
	drained := uint64(0)
	for src := 0; src < k; src++ {
		for dst := 0; dst < k; dst++ {
			if q := s.rings[src][dst]; q != nil {
				e := s.engines[dst]
				floor := e.now
				if window {
					floor++
				}
				drained += commitQueue(e, q, floor)
			}
		}
	}
	s.crossed += drained
	if drained > s.ringHigh {
		s.ringHigh = drained
	}
	if drained > 0 && tracing {
		s.trc.rec.Add(trace.Span{
			Name: "drain", Cat: "engine", Track: trace.CoordinatorTrack,
			Virt: int64(s.now), VirtEnd: int64(s.now),
			Wall:    s.trc.rec.Since(dStart),
			WallDur: time.Since(dStart).Nanoseconds(),
		}.Annotate("events", int64(drained)).Annotate("ring_high", int64(s.ringHigh)))
	}
}
