package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

// stressBounce is benchBounce with a hop counter, safe to update from
// any shard goroutine.
type stressBounce struct {
	s    *ShardedEngine
	prop Time
	hops atomic.Uint64
}

func (c *stressBounce) Run(shard, hops int64) {
	c.hops.Add(1)
	if hops == 0 {
		return
	}
	next := (int(shard) + 1) % c.s.Shards()
	c.s.Cross(int(shard), next, c.s.Shard(int(shard)).Now()+c.prop, c, int64(next), hops-1)
}

// TestEpochBarrierStress hammers the two-level barrier with the
// smallest windows the synchronizer admits: 8 shards, 1ns lookahead,
// a 1ns window cap, 8 concurrent cross-shard chains, periodic flex
// ticks fragmenting the epochs, and a goroutine firing Stop
// mid-run — every stride is a spin-barrier round and every stop an
// epoch teardown/rebuild. Run under -race (make race covers
// internal/sim), this is the data-race and wedge detector for the
// epoch/stride machinery.
func TestEpochBarrierStress(t *testing.T) {
	const k = 8
	const prop = Nanosecond
	const hops = 2000
	s := NewShardedEngine(k, prop, func(int) *Engine { return NewCalendarEngine() })
	s.SetWindowCap(prop)

	c := &stressBounce{s: s, prop: prop}
	for i := 0; i < k; i++ {
		s.Shard(i).ScheduleAction(Time(i)*Nanosecond, c, int64(i), hops)
	}

	// Flex ticks with tolerance: every epoch boundary they force is a
	// full park/wake round trip plus a global phase.
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 200 {
			s.AfterFlex(10*Nanosecond, 5*Nanosecond, tick)
		}
	}
	s.AfterFlex(10*Nanosecond, 5*Nanosecond, tick)

	// Fire Stop from outside while the run is hot; every Run below
	// resumes from wherever the previous one was interrupted.
	stopDone := make(chan struct{})
	go func() {
		defer close(stopDone)
		for i := 0; i < 50; i++ {
			time.Sleep(200 * time.Microsecond)
			s.Stop()
		}
	}()
	for s.Pending() > 0 {
		s.Run()
	}
	<-stopDone
	for s.Pending() > 0 { // late Stop may have interrupted again
		s.Run()
	}

	if got, want := c.hops.Load(), uint64(k*(hops+1)); got != want {
		t.Fatalf("ran %d chain events, want %d", got, want)
	}
	if got, want := s.Crossed(), uint64(k*hops); got != want {
		t.Fatalf("committed %d cross events, want %d", got, want)
	}
	if ticks != 200 {
		t.Fatalf("flex tick ran %d times, want 200", ticks)
	}
	if s.Strides() < s.Windows() {
		t.Fatalf("strides %d below windows %d: every epoch runs at least one stride", s.Strides(), s.Windows())
	}
}

// TestShardedEngineSerialSectionPanicPropagates pins the failure path
// the batched barrier added: a lookahead violation is detected inside
// the stride serial section (on a worker goroutine, not the
// coordinator), and must still surface as a coordinator panic without
// wedging either barrier.
func TestShardedEngineSerialSectionPanicPropagates(t *testing.T) {
	const prop = Microsecond
	s := NewShardedEngine(2, prop, func(int) *Engine { return NewEngine() })
	s.Shard(0).Schedule(Nanosecond, func() {
		// Breaks the lookahead promise: prop is 1us but the event lands
		// 1ns out. The commit in the serial section must panic.
		s.Cross(0, 1, s.Shard(0).Now()+Nanosecond, nopAction{}, 0, 0)
	})
	// Give shard 1 pending work beyond the violation so the stride
	// commit, not an engine clamp, is what trips.
	s.Shard(1).Schedule(2*prop, func() {})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("lookahead violation in the serial section did not propagate")
		}
	}()
	s.Run()
}
