package sim

import (
	"fmt"
	"sync"
	"testing"
)

// shardLogAction appends (shard, now, a) tuples; used to observe
// execution order inside one shard.
type shardLogAction struct {
	eng *Engine
	out *[]int64
}

func (r *shardLogAction) Run(a, b int64) {
	*r.out = append(*r.out, int64(r.eng.Now()), a)
}

func TestShardedEngineRunsLocalEvents(t *testing.T) {
	s := NewShardedEngine(3, Microsecond, func(int) *Engine { return NewEngine() })
	var logs [3][]int64
	for i := 0; i < 3; i++ {
		rec := &shardLogAction{eng: s.Shard(i), out: &logs[i]}
		for j := 0; j < 5; j++ {
			s.Shard(i).ScheduleAction(Time(j)*Nanosecond, rec, int64(j), 0)
		}
	}
	s.Run()
	if got := s.Processed(); got != 15 {
		t.Fatalf("processed %d events, want 15", got)
	}
	for i, log := range logs {
		if len(log) != 10 {
			t.Fatalf("shard %d recorded %d values, want 10", i, len(log))
		}
		for j := 0; j < 5; j++ {
			if at, a := log[2*j], log[2*j+1]; at != int64(j)*int64(Nanosecond) || a != int64(j) {
				t.Fatalf("shard %d event %d: got (at=%d a=%d)", i, j, at, a)
			}
		}
	}
}

// crossAction bounces an event to the next shard until hops runs out.
type crossAction struct {
	s    *ShardedEngine
	prop Time
	out  *[]int64 // (shard, time) pairs, coordinator-committed order
	mu   sync.Mutex
}

func (c *crossAction) Run(shard, hops int64) {
	e := c.s.Shard(int(shard))
	c.mu.Lock()
	*c.out = append(*c.out, shard, int64(e.Now()))
	c.mu.Unlock()
	if hops == 0 {
		return
	}
	next := (int(shard) + 1) % c.s.Shards()
	c.s.Cross(int(shard), next, e.Now()+c.prop, c, int64(next), hops-1)
}

func TestShardedEngineCrossEvents(t *testing.T) {
	const prop = 250 * Nanosecond
	s := NewShardedEngine(4, prop, func(int) *Engine { return NewEngine() })
	var out []int64
	c := &crossAction{s: s, prop: prop, out: &out}
	s.Shard(0).ScheduleAction(0, c, 0, 9)
	s.Run()
	if len(out) != 20 {
		t.Fatalf("ran %d hops, want 10: %v", len(out)/2, out)
	}
	for i := 0; i < 10; i++ {
		wantShard, wantAt := int64(i%4), int64(i)*int64(prop)
		if out[2*i] != wantShard || out[2*i+1] != wantAt {
			t.Fatalf("hop %d: got shard %d at %d, want shard %d at %d",
				i, out[2*i], out[2*i+1], wantShard, wantAt)
		}
	}
	if s.Crossed() != 9 {
		t.Fatalf("crossed %d events, want 9", s.Crossed())
	}
}

func TestShardedEngineGlobalPhase(t *testing.T) {
	const prop = Microsecond
	s := NewShardedEngine(2, prop, func(int) *Engine { return NewEngine() })
	var mu sync.Mutex
	var order []string
	add := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	for i := 0; i < 2; i++ {
		i := i
		s.Shard(i).Schedule(1*Nanosecond, func() { add(fmt.Sprintf("s%d@1", i)) })
		s.Shard(i).Schedule(9*Nanosecond, func() { add(fmt.Sprintf("s%d@9", i)) })
	}
	s.Schedule(5*Nanosecond, func() {
		// Global events run with every shard parked and advanced to the
		// phase time.
		for i := 0; i < 2; i++ {
			if now := s.Shard(i).Now(); now != 5*Nanosecond {
				t.Errorf("shard %d clock %v inside global phase, want 5ns", i, now)
			}
		}
		add("global@5")
	})
	s.Run()
	// The shard events at 1ns and 9ns straddle the global at 5ns; shard
	// order within a window is nondeterministic, but phases are ordered.
	if len(order) != 5 || order[2] != "global@5" {
		t.Fatalf("phase order %v, want global@5 strictly between the 1ns and 9ns pairs", order)
	}
}

func TestShardedEngineGlobalAfterSchedulesShardWork(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	ran := false
	s.Shard(0).Schedule(Nanosecond, func() {})
	s.After(3*Nanosecond, func() {
		// Globals may schedule onto any shard while shards are parked.
		s.Shard(1).Schedule(s.Now()+Nanosecond, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("shard event scheduled from a global phase never ran")
	}
	if got := s.Now(); got < 4*Nanosecond {
		t.Fatalf("final time %v, want >= 4ns", got)
	}
}

func TestShardedEngineRunUntilAdvancesClocks(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	s.Shard(0).Schedule(Nanosecond, func() {})
	end := 50 * Nanosecond
	s.RunUntil(end)
	if s.Now() != end {
		t.Fatalf("synchronizer clock %v, want %v", s.Now(), end)
	}
	for i := 0; i < 2; i++ {
		if got := s.Shard(i).Now(); got != end {
			t.Fatalf("shard %d clock %v, want %v", i, got, end)
		}
	}
	// Events beyond end must not have run and must still be runnable.
	later := false
	s.Shard(1).Schedule(60*Nanosecond, func() { later = true })
	s.RunUntil(100 * Nanosecond)
	if !later {
		t.Fatal("event scheduled after a RunUntil resume never ran")
	}
}

func TestShardedEngineStop(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	ran := 0
	var tick func()
	tick = func() {
		ran++
		if ran == 10 {
			s.Stop() // from inside a shard event: any-goroutine safe
		}
		s.Shard(0).After(Nanosecond, tick)
	}
	s.Shard(0).After(Nanosecond, tick)
	s.Run()
	if ran < 10 {
		t.Fatalf("ran %d events before stop, want >= 10", ran)
	}
	if s.Pending() == 0 {
		t.Fatal("stop drained the queue; expected the self-rescheduling event to remain")
	}
}

func TestShardedEngineShardPanicPropagates(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	s.Shard(1).Schedule(Nanosecond, func() { panic("boom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("shard panic did not propagate to the coordinator")
		}
	}()
	s.Run()
}

func TestShardedEngineValidation(t *testing.T) {
	for _, tc := range []struct {
		k    int
		look Time
	}{{0, Microsecond}, {2, 0}, {2, -Nanosecond}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShardedEngine(k=%d, look=%v) did not panic", tc.k, tc.look)
				}
			}()
			NewShardedEngine(tc.k, tc.look, func(int) *Engine { return NewEngine() })
		}()
	}
}

// chainAction bounces 4 concurrent chains around the shards. Each
// chain logs to its own slice — chains run on distinct shards within a
// window, so the per-chain logs are written race-free and their
// contents are a pure function of the workload.
type chainAction struct {
	s    *ShardedEngine
	prop Time
	logs [][]int64
}

func (c *chainAction) Run(a, hops int64) {
	chain, shard := int(a>>8), int(a&0xff)
	e := c.s.Shard(shard)
	c.logs[chain] = append(c.logs[chain], int64(e.Now()), int64(shard))
	if hops == 0 {
		return
	}
	next := (shard + 1) % c.s.Shards()
	c.s.Cross(shard, next, e.Now()+c.prop, c, int64(chain<<8|next), hops-1)
}

// TestShardedEngineDeterminism runs the same concurrent bouncing
// workload twice and requires identical per-chain execution logs —
// goroutine timing must not leak into results.
func TestShardedEngineDeterminism(t *testing.T) {
	run := func() [][]int64 {
		const prop = 250 * Nanosecond
		s := NewShardedEngine(4, prop, func(int) *Engine { return NewCalendarEngine() })
		c := &chainAction{s: s, prop: prop, logs: make([][]int64, 4)}
		for i := 0; i < 4; i++ {
			s.Shard(i).ScheduleAction(Time(i)*Nanosecond, c, int64(i<<8|i), 50)
		}
		s.Run()
		return c.logs
	}
	a, b := run(), run()
	for chain := range a {
		if len(a[chain]) != len(b[chain]) {
			t.Fatalf("chain %d log lengths differ: %d vs %d", chain, len(a[chain]), len(b[chain]))
		}
		if len(a[chain]) != 2*51 {
			t.Fatalf("chain %d ran %d hops, want 51", chain, len(a[chain])/2)
		}
		for i := range a[chain] {
			if a[chain][i] != b[chain][i] {
				t.Fatalf("chain %d diverges at %d: %d vs %d", chain, i, a[chain][i], b[chain][i])
			}
		}
	}
}

func TestShardedEngineTelemetry(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	s.Shard(0).Schedule(Nanosecond, func() {})
	s.Shard(1).Schedule(Nanosecond, func() {})
	s.Schedule(2*Nanosecond, func() {})
	s.Run()
	tel := s.Telemetry()
	if tel.Events != 3 {
		t.Fatalf("telemetry events %d, want 3", tel.Events)
	}
	if len(tel.Shards) != 2 {
		t.Fatalf("telemetry shards %d, want 2", len(tel.Shards))
	}
	if tel.Shards[0].Events != 1 || tel.Shards[1].Events != 1 {
		t.Fatalf("per-shard events %+v, want 1 each", tel.Shards)
	}
}
