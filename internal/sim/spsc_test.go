package sim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestSPSCRingFIFO(t *testing.T) {
	r := newSPSCRing(8)
	for i := int64(0); i < 8; i++ {
		if !r.push(remote{a: i}) {
			t.Fatalf("push %d failed on a ring with room", i)
		}
	}
	if r.push(remote{a: 99}) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := int64(0); i < 8; i++ {
		got, ok := r.pop()
		if !ok || got.a != i {
			t.Fatalf("pop %d: got (%v, %v)", i, got.a, ok)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
	// Wrap-around: interleaved push/pop past the capacity boundary.
	for i := int64(0); i < 100; i++ {
		if !r.push(remote{a: i}) {
			t.Fatalf("wrap push %d failed", i)
		}
		got, ok := r.pop()
		if !ok || got.a != i {
			t.Fatalf("wrap pop %d: got (%v, %v)", i, got.a, ok)
		}
	}
}

func TestSPSCRingRoundsCapacity(t *testing.T) {
	r := newSPSCRing(5)
	if len(r.buf) != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", len(r.buf))
	}
}

func TestShardQueueOverflowKeepsFIFO(t *testing.T) {
	q := newShardQueue(4)
	const n = 50 // far past the ring capacity
	for i := int64(0); i < n; i++ {
		q.push(remote{a: i})
	}
	var got []int64
	q.drain(func(r remote) { got = append(got, r.a) })
	if len(got) != n {
		t.Fatalf("drained %d records, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("record %d out of order: got %d", i, v)
		}
	}
	// The queue must be reusable after a drain.
	q.push(remote{a: 7})
	got = got[:0]
	q.drain(func(r remote) { got = append(got, r.a) })
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("post-drain reuse: got %v", got)
	}
}

// TestSPSCRingConcurrent hammers the ring from one producer and one
// consumer goroutine; run under -race this validates the wait-free
// publication protocol (make verify does).
func TestSPSCRingConcurrent(t *testing.T) {
	r := newSPSCRing(64)
	const n = 100000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; {
			if r.push(remote{a: i, at: Time(i)}) {
				i++
			} else {
				runtime.Gosched() // full ring: let the consumer drain
			}
		}
	}()
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; {
			rec, ok := r.pop()
			if !ok {
				runtime.Gosched() // empty ring: let the producer refill
				continue
			}
			if rec.a != i || rec.at != Time(i) {
				select {
				case errs <- fmt.Errorf("record %d: got (a=%d at=%d)", i, rec.a, int64(rec.at)):
				default:
				}
				return
			}
			i++
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
