package sim

import (
	"sort"
)

// eventQueue abstracts the engine's pending-event store. Both
// implementations order events by (time, schedule sequence), so the
// engine behaves identically regardless of the queue chosen.
//
// Events are held by value: neither backend boxes records through
// interface{} or allocates per event, and both reuse their backing
// storage across pushes and pops, so a steady-state simulation does no
// queue allocation at all.
type eventQueue interface {
	push(event)
	// pop removes and returns the earliest event; callers check len
	// first via size.
	pop() event
	// peekAt returns the earliest event's timestamp.
	peekAt() Time
	size() int
}

// before orders events by (at, seq).
func (e *event) before(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// heapQueue is the default binary-heap implementation: sift-up/down
// written directly against []event (container/heap would box every
// record through interface{} on Push and Pop).
type heapQueue struct {
	h []event
}

func (q *heapQueue) push(e event) {
	q.h = append(q.h, e)
	// Sift up.
	h := q.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *heapQueue) pop() event {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure/action references to the GC
	q.h = h[:n]
	// Sift down.
	h = q.h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			least = r
		}
		if !h[least].before(&h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

func (q *heapQueue) peekAt() Time { return q.h[0].at }
func (q *heapQueue) size() int    { return len(q.h) }

// bucket is one calendar day: a head-indexed slice of events sorted by
// (at, seq). Pops advance head instead of re-slicing, so the backing
// array's capacity is reused run-long; the popped slot is zeroed to
// release references.
type bucket struct {
	evs  []event
	head int
}

func (b *bucket) len() int { return len(b.evs) - b.head }

// compact reclaims the dead prefix once it dominates the slice, keeping
// push's append from growing the array without bound when a bucket
// never fully drains.
func (b *bucket) compact() {
	if b.head >= 64 && b.head*2 >= len(b.evs) {
		n := copy(b.evs, b.evs[b.head:])
		tail := b.evs[n:]
		for i := range tail {
			tail[i] = event{}
		}
		b.evs = b.evs[:n]
		b.head = 0
	}
}

// calendarQueue is a classic calendar-queue event store (Brown 1988):
// events hash into day buckets by timestamp; dequeue scans the current
// day. For workloads whose event horizon is dense and roughly uniform —
// packet simulations are — enqueue and dequeue approach O(1). The
// structure resizes itself to keep about one event per bucket.
type calendarQueue struct {
	buckets  []bucket
	width    Time // day width
	dayStart Time // start time of the current day
	day      int  // current bucket index
	n        int
	resizeUp int
	resizeDn int
}

// newCalendarQueue returns a calendar queue tuned for picosecond
// packet workloads: the initial day width matches a few hundred
// nanoseconds of virtual time.
func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.init(64, 256*Nanosecond, 0)
	return q
}

func (q *calendarQueue) init(nbuckets int, width, start Time) {
	q.buckets = make([]bucket, nbuckets)
	q.width = width
	q.dayStart = start - start%width
	if start < 0 {
		q.dayStart = 0
	}
	q.day = int(q.dayStart/width) % nbuckets
	q.resizeUp = 2 * nbuckets
	q.resizeDn = nbuckets/2 - 2
}

func (q *calendarQueue) bucketFor(at Time) int {
	return int(at/q.width) % len(q.buckets)
}

func (q *calendarQueue) push(e event) {
	bk := &q.buckets[q.bucketFor(e.at)]
	evs := bk.evs
	// Insert keeping the live window sorted by (at, seq); buckets stay
	// short so linear insertion wins over anything clever.
	i := len(evs)
	for i > bk.head && e.before(&evs[i-1]) {
		i--
	}
	evs = append(evs, event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = e
	bk.evs = evs
	q.n++
	if q.n > q.resizeUp {
		q.resize(len(q.buckets) * 2)
	}
}

func (q *calendarQueue) pop() event {
	for {
		// Scan forward from the current day for the next event that
		// belongs to the current year window.
		for i := 0; i < len(q.buckets); i++ {
			b := (q.day + i) % len(q.buckets)
			dayStart := q.dayStart + Time(i)*q.width
			bk := &q.buckets[b]
			if bk.len() > 0 && bk.evs[bk.head].at < dayStart+q.width {
				e := bk.evs[bk.head]
				bk.evs[bk.head] = event{} // release references
				bk.head++
				if bk.head == len(bk.evs) {
					bk.evs = bk.evs[:0]
					bk.head = 0
				} else {
					bk.compact()
				}
				q.n--
				q.day = b
				q.dayStart = dayStart
				if q.n < q.resizeDn && len(q.buckets) > 64 {
					q.resize(len(q.buckets) / 2)
				}
				return e
			}
		}
		// Nothing in this year: jump to the globally earliest event.
		min := MaxTime
		found := false
		for i := range q.buckets {
			bk := &q.buckets[i]
			if bk.len() > 0 && bk.evs[bk.head].at < min {
				min = bk.evs[bk.head].at
				found = true
			}
		}
		if !found {
			panic("sim: pop on empty calendar queue")
		}
		q.dayStart = min - min%q.width
		q.day = q.bucketFor(q.dayStart)
	}
}

func (q *calendarQueue) peekAt() Time {
	// Used only to decide whether to stop before `end`; a full scan is
	// acceptable because RunUntil calls it once per event anyway, and
	// the common case finds the event in the current day.
	for i := 0; i < len(q.buckets); i++ {
		b := (q.day + i) % len(q.buckets)
		dayStart := q.dayStart + Time(i)*q.width
		bk := &q.buckets[b]
		if bk.len() > 0 && bk.evs[bk.head].at < dayStart+q.width {
			return bk.evs[bk.head].at
		}
	}
	min := MaxTime
	for i := range q.buckets {
		bk := &q.buckets[i]
		if bk.len() > 0 && bk.evs[bk.head].at < min {
			min = bk.evs[bk.head].at
		}
	}
	return min
}

func (q *calendarQueue) size() int { return q.n }

// resize rebuilds the calendar with a new bucket count and a day width
// estimated from the current event spread. Resizes are amortized-rare
// (the thresholds are geometric), so the gather-and-redistribute
// allocation here does not affect steady-state behaviour.
func (q *calendarQueue) resize(nbuckets int) {
	all := make([]event, 0, q.n)
	for i := range q.buckets {
		bk := &q.buckets[i]
		all = append(all, bk.evs[bk.head:]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].before(&all[j]) })
	width := q.width
	if len(all) > 2 {
		span := all[len(all)-1].at - all[0].at
		if w := span / Time(len(all)); w > 0 {
			width = w
		}
	}
	start := q.dayStart
	if len(all) > 0 && all[0].at < start {
		start = all[0].at
	}
	q.init(nbuckets, width, start)
	q.n = len(all)
	for _, e := range all {
		b := q.bucketFor(e.at)
		q.buckets[b].evs = append(q.buckets[b].evs, e)
	}
}
