package sim

import (
	"container/heap"
	"sort"
)

// eventQueue abstracts the engine's pending-event store. Both
// implementations order events by (time, schedule sequence), so the
// engine behaves identically regardless of the queue chosen.
type eventQueue interface {
	push(event)
	// pop removes and returns the earliest event; callers check len
	// first via size.
	pop() event
	// peekAt returns the earliest event's timestamp.
	peekAt() Time
	size() int
}

// heapQueue is the default binary-heap implementation.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e event) { heap.Push(&q.h, e) }
func (q *heapQueue) pop() event   { return heap.Pop(&q.h).(event) }
func (q *heapQueue) peekAt() Time { return q.h[0].at }
func (q *heapQueue) size() int    { return len(q.h) }

// calendarQueue is a classic calendar-queue event store (Brown 1988):
// events hash into day buckets by timestamp; dequeue scans the current
// day. For workloads whose event horizon is dense and roughly uniform —
// packet simulations are — enqueue and dequeue approach O(1). The
// structure resizes itself to keep about one event per bucket.
type calendarQueue struct {
	buckets  []([]event)
	width    Time // day width
	dayStart Time // start time of the current day
	day      int  // current bucket index
	n        int
	resizeUp int
	resizeDn int
}

// newCalendarQueue returns a calendar queue tuned for picosecond
// packet workloads: the initial day width matches a few hundred
// nanoseconds of virtual time.
func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.init(64, 256*Nanosecond, 0)
	return q
}

func (q *calendarQueue) init(nbuckets int, width, start Time) {
	q.buckets = make([][]event, nbuckets)
	q.width = width
	q.dayStart = start - start%width
	if start < 0 {
		q.dayStart = 0
	}
	q.day = int(q.dayStart/width) % nbuckets
	q.resizeUp = 2 * nbuckets
	q.resizeDn = nbuckets/2 - 2
}

func (q *calendarQueue) bucketFor(at Time) int {
	return int(at/q.width) % len(q.buckets)
}

func (q *calendarQueue) push(e event) {
	b := q.bucketFor(e.at)
	lst := q.buckets[b]
	// Insert keeping the bucket sorted by (at, seq); buckets stay short
	// so linear insertion wins over anything clever.
	i := len(lst)
	for i > 0 && (lst[i-1].at > e.at || (lst[i-1].at == e.at && lst[i-1].seq > e.seq)) {
		i--
	}
	lst = append(lst, event{})
	copy(lst[i+1:], lst[i:])
	lst[i] = e
	q.buckets[b] = lst
	q.n++
	if q.n > q.resizeUp {
		q.resize(len(q.buckets) * 2)
	}
}

func (q *calendarQueue) pop() event {
	for {
		// Scan forward from the current day for the next event that
		// belongs to the current year window.
		for i := 0; i < len(q.buckets); i++ {
			b := (q.day + i) % len(q.buckets)
			dayStart := q.dayStart + Time(i)*q.width
			lst := q.buckets[b]
			if len(lst) > 0 && lst[0].at < dayStart+q.width {
				e := lst[0]
				q.buckets[b] = lst[1:]
				q.n--
				q.day = b
				q.dayStart = dayStart
				if q.n < q.resizeDn && len(q.buckets) > 64 {
					q.resize(len(q.buckets) / 2)
				}
				return e
			}
		}
		// Nothing in this year: jump to the globally earliest event.
		min := Time(1)<<62 - 1
		found := false
		for _, lst := range q.buckets {
			if len(lst) > 0 && lst[0].at < min {
				min = lst[0].at
				found = true
			}
		}
		if !found {
			panic("sim: pop on empty calendar queue")
		}
		q.dayStart = min - min%q.width
		q.day = q.bucketFor(q.dayStart)
	}
}

func (q *calendarQueue) peekAt() Time {
	// Used only to decide whether to stop before `end`; a full scan is
	// acceptable because RunUntil calls it once per event anyway, and
	// the common case finds the event in the current day.
	for i := 0; i < len(q.buckets); i++ {
		b := (q.day + i) % len(q.buckets)
		dayStart := q.dayStart + Time(i)*q.width
		lst := q.buckets[b]
		if len(lst) > 0 && lst[0].at < dayStart+q.width {
			return lst[0].at
		}
	}
	min := Time(1)<<62 - 1
	for _, lst := range q.buckets {
		if len(lst) > 0 && lst[0].at < min {
			min = lst[0].at
		}
	}
	return min
}

func (q *calendarQueue) size() int { return q.n }

// resize rebuilds the calendar with a new bucket count and a day width
// estimated from the current event spread.
func (q *calendarQueue) resize(nbuckets int) {
	var all []event
	for _, lst := range q.buckets {
		all = append(all, lst...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].seq < all[j].seq
	})
	width := q.width
	if len(all) > 2 {
		span := all[len(all)-1].at - all[0].at
		if w := span / Time(len(all)); w > 0 {
			width = w
		}
	}
	start := q.dayStart
	if len(all) > 0 && all[0].at < start {
		start = all[0].at
	}
	q.init(nbuckets, width, start)
	q.n = 0
	for _, e := range all {
		b := q.bucketFor(e.at)
		q.buckets[b] = append(q.buckets[b], e)
		q.n++
	}
}
