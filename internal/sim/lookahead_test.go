package sim

import "testing"

func tns(v int64) Time { return Time(v) * Nanosecond }

func TestClosure(t *testing.T) {
	// Ring 0→1→2→0 plus a slow direct 0→2 edge the two-hop path beats.
	look := [][]Time{
		{0, tns(10), tns(100)},
		{0, 0, tns(20)},
		{tns(30), 0, 0},
	}
	d := closure(look)
	cases := []struct {
		i, j int
		want Time
	}{
		{0, 1, tns(10)},
		{0, 2, tns(30)}, // 0→1→2 beats the direct 100ns edge
		{1, 2, tns(20)},
		{1, 0, tns(50)}, // 1→2→0
		{2, 0, tns(30)},
		{2, 1, tns(40)}, // 2→0→1
		{0, 0, tns(60)}, // cheapest cycle: 10+20+30
		{1, 1, tns(60)},
		{2, 2, tns(60)},
	}
	for _, c := range cases {
		if d[c.i][c.j] != c.want {
			t.Errorf("closure[%d][%d] = %v, want %v", c.i, c.j, d[c.i][c.j], c.want)
		}
	}
}

func TestClosureUnreachable(t *testing.T) {
	// 0→1 only: 1 can never reach 0, and neither shard has a cycle.
	d := closure([][]Time{
		{0, tns(10)},
		{0, 0},
	})
	for _, c := range []struct{ i, j int }{{1, 0}, {0, 0}, {1, 1}} {
		if d[c.i][c.j] != MaxTime {
			t.Errorf("closure[%d][%d] = %v, want MaxTime (unreachable)", c.i, c.j, d[c.i][c.j])
		}
	}
}

func TestSetLookaheadValidation(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	for name, m := range map[string][][]Time{
		"wrong matrix size": {{0, Nanosecond}},
		"ragged row":        {{0, Nanosecond}, {Nanosecond}},
		"negative entry":    {{0, Nanosecond}, {-Nanosecond, 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLookahead with %s did not panic", name)
				}
			}()
			s.SetLookahead(m)
		}()
	}
	// Window cap below the minimum lookahead is rejected too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetWindowCap below minimum lookahead did not panic")
			}
		}()
		s.SetWindowCap(Nanosecond)
	}()
}

// pingPong bounces a chain between shards 0 and 1 with asymmetric
// legs: the 0→1 hop takes fwd, the 1→0 hop takes back. a encodes
// chain<<8|shard, b the remaining hops.
type pingPong struct {
	s         *ShardedEngine
	fwd, back Time
	logs      [][]int64
}

func (c *pingPong) Run(a, hops int64) {
	chain, shard := int(a>>8), int(a&0xff)
	e := c.s.Shard(shard)
	c.logs[chain] = append(c.logs[chain], int64(e.Now()), int64(shard))
	if hops == 0 {
		return
	}
	prop := c.fwd
	if shard == 1 {
		prop = c.back
	}
	c.s.Cross(shard, 1-shard, e.Now()+prop, c, int64(chain<<8|(1-shard)), hops-1)
}

// TestSetLookaheadWidensWindows pins the tentpole property: replacing
// the uniform all-pairs promise with the true per-pair matrix must
// not change the event schedule at all, while the wider promise on
// the slow direction widens windows — fewer strides for the same
// work. The workload is asymmetric ping-pong (1us forward, 100us
// back) with several chains at staggered phases: under the scalar
// 1us promise a pending event on shard 1 caps shard 0's window at
// +1us even though the true return promise is 100us, so staggered
// chains that the matrix runs in one stride fragment into many.
func TestSetLookaheadWidensWindows(t *testing.T) {
	const chains = 8
	const fwd, back = Microsecond, 100 * Microsecond
	run := func(matrix bool) ([][]int64, uint64) {
		s := NewShardedEngine(2, fwd, func(int) *Engine { return NewCalendarEngine() })
		if matrix {
			s.SetLookahead([][]Time{
				{0, fwd},
				{back, 0},
			})
		}
		c := &pingPong{s: s, fwd: fwd, back: back, logs: make([][]int64, chains)}
		for i := 0; i < chains; i++ {
			s.Shard(0).ScheduleAction(Time(i)*7*Microsecond, c, int64(i<<8), 40)
		}
		s.Run()
		return c.logs, s.Strides()
	}
	uniLogs, uniStrides := run(false)
	matLogs, matStrides := run(true)
	for chain := range uniLogs {
		if len(uniLogs[chain]) != len(matLogs[chain]) {
			t.Fatalf("chain %d log lengths differ: %d uniform vs %d matrix", chain, len(uniLogs[chain]), len(matLogs[chain]))
		}
		for i := range uniLogs[chain] {
			if uniLogs[chain][i] != matLogs[chain][i] {
				t.Fatalf("chain %d diverges at %d: %d uniform vs %d matrix; per-pair lookahead must not change the schedule", chain, i, uniLogs[chain][i], matLogs[chain][i])
			}
		}
	}
	if matStrides >= uniStrides {
		t.Fatalf("matrix run used %d strides, uniform %d: the closure over the ring must widen windows", matStrides, uniStrides)
	}
	t.Logf("strides: uniform %d, per-pair matrix %d", uniStrides, matStrides)
}

// TestCrossEnforcesPerPairPromise: the commit floor checks against
// the per-pair window, not the global minimum — a send that the old
// scalar lookahead (1us here, from the 1→0 edge) would have accepted
// is a violation of the 10us promise the 0→1 pair actually made, and
// the stride commit must catch it.
func TestCrossEnforcesPerPairPromise(t *testing.T) {
	s := NewShardedEngine(2, Microsecond, func(int) *Engine { return NewEngine() })
	s.SetLookahead([][]Time{
		{0, 10 * Microsecond},
		{Microsecond, 0},
	})
	s.Shard(0).Schedule(0, func() {
		s.Cross(0, 1, s.Shard(0).Now()+Microsecond, nopAction{}, 0, 0)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Cross below the 0→1 pair promise did not surface a commit panic")
		}
	}()
	s.Run()
}
