package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCalendarMatchesHeapOrder: both queue implementations must run any
// random schedule in exactly the same order.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		count := int(n%500) + 1
		run := func(e *Engine) []int {
			rng := rand.New(rand.NewSource(seed))
			var order []int
			for i := 0; i < count; i++ {
				i := i
				at := Time(rng.Int63n(int64(10 * Microsecond)))
				e.Schedule(at, func() { order = append(order, i) })
			}
			e.Run()
			return order
		}
		a := run(NewEngine())
		b := run(NewCalendarEngine())
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCalendarNestedAndSparse exercises resizing and sparse year jumps.
func TestCalendarNestedAndSparse(t *testing.T) {
	e := NewCalendarEngine()
	var hits []Time
	// A sparse far-future event forces a year jump.
	e.Schedule(3*Second, func() { hits = append(hits, e.Now()) })
	// A dense burst forces an upward resize.
	for i := 0; i < 1000; i++ {
		at := Time(i) * 100 * Nanosecond
		e.Schedule(at, func() { hits = append(hits, e.Now()) })
	}
	// Nested scheduling from within events.
	e.Schedule(50*Microsecond, func() {
		e.After(10*Microsecond, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 1002 {
		t.Fatalf("ran %d events, want 1002", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i] < hits[i-1] {
			t.Fatalf("out of order at %d: %v then %v", i, hits[i-1], hits[i])
		}
	}
	if hits[len(hits)-1] != 3*Second {
		t.Errorf("last event at %v, want 3s", hits[len(hits)-1])
	}
}

func TestCalendarRunUntil(t *testing.T) {
	e := NewCalendarEngine()
	ran := 0
	for _, at := range []Time{10, 20, 30} {
		e.Schedule(at, func() { ran++ })
	}
	e.RunUntil(20)
	if ran != 2 || e.Now() != 20 {
		t.Errorf("ran=%d now=%v, want 2/20", ran, e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Errorf("ran=%d, want 3", ran)
	}
}

func BenchmarkHeapEngine(b *testing.B) {
	benchEngine(b, NewEngine)
}

func BenchmarkCalendarEngine(b *testing.B) {
	benchEngine(b, NewCalendarEngine)
}

// benchEngine models a packet-simulation profile: a rolling horizon of
// ~1000 pending events, each rescheduling a successor.
func benchEngine(b *testing.B, mk func() *Engine) {
	b.Helper()
	e := mk()
	rng := rand.New(rand.NewSource(1))
	live := 0
	var spawn func()
	spawn = func() {
		if live < b.N {
			live++
			e.After(Time(rng.Int63n(int64(Microsecond))), spawn)
		}
	}
	for i := 0; i < 1000 && i < b.N; i++ {
		spawn()
	}
	b.ResetTimer()
	e.Run()
}
