package sim

import (
	"testing"
)

// countAction is a trivial Action for the hot-path tests.
type countAction struct {
	ran  int
	eng  *Engine
	hops int64
}

func (c *countAction) Run(a, b int64) {
	c.ran++
	if a > 0 {
		// Re-arm: model a chain of typed events, the way the packet
		// simulator's transmit/arrive events re-schedule each other.
		c.eng.ScheduleAction(c.eng.Now()+Nanosecond, c, a-1, b)
	}
}

// TestScheduleActionZeroAllocs locks in the tentpole invariant: once
// the queue's backing storage is warm, scheduling and running typed
// events allocates nothing — no closure, no interface boxing, no
// re-sliced buckets.
func TestScheduleActionZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		eng  *Engine
	}{
		{"heap", NewEngine()},
		{"calendar", NewCalendarEngine()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			act := &countAction{eng: tc.eng}
			// Warm the queue storage.
			tc.eng.ScheduleAction(tc.eng.Now()+Nanosecond, act, 64, 0)
			tc.eng.Run()
			allocs := testing.AllocsPerRun(200, func() {
				tc.eng.ScheduleAction(tc.eng.Now()+Nanosecond, act, 16, 0)
				tc.eng.Run()
			})
			if allocs != 0 {
				t.Fatalf("%s: %.1f allocs per 17-event run, want 0", tc.name, allocs)
			}
		})
	}
}

// TestActionClosureInterleaving checks that typed and closure events
// scheduled for the same instant still run in schedule order.
func TestActionClosureInterleaving(t *testing.T) {
	eng := NewCalendarEngine()
	var order []int
	rec := &recordAction{order: &order}
	at := Time(5 * Nanosecond)
	eng.Schedule(at, func() { order = append(order, 0) })
	eng.ScheduleAction(at, rec, 1, 0)
	eng.Schedule(at, func() { order = append(order, 2) })
	eng.ScheduleAction(at, rec, 3, 0)
	eng.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v, want [0 1 2 3]", order)
		}
	}
}

type recordAction struct{ order *[]int }

func (r *recordAction) Run(a, b int64) { *r.order = append(*r.order, int(a)) }

// TestAfterActionNegativeDelayPanics mirrors After's contract.
func TestAfterActionNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	NewEngine().AfterAction(-1, &countAction{}, 0, 0)
}

func benchSchedule(b *testing.B, eng *Engine, typed bool) {
	b.ReportAllocs()
	act := &countAction{eng: eng}
	n := 0
	fn := func() { n++ }
	for i := 0; i < b.N; i++ {
		if typed {
			eng.ScheduleAction(eng.Now()+Nanosecond, act, 0, 0)
		} else {
			eng.Schedule(eng.Now()+Nanosecond, fn)
		}
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkScheduleActionHeap(b *testing.B)     { benchSchedule(b, NewEngine(), true) }
func BenchmarkScheduleActionCalendar(b *testing.B) { benchSchedule(b, NewCalendarEngine(), true) }
func BenchmarkScheduleClosureHeap(b *testing.B)    { benchSchedule(b, NewEngine(), false) }
func BenchmarkScheduleClosureCalendar(b *testing.B) {
	benchSchedule(b, NewCalendarEngine(), false)
}
