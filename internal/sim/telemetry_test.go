package sim

import "testing"

type countingProbe struct {
	events  int
	maxPend int
}

func (c *countingProbe) Event(at Time, pending int) {
	c.events++
	if pending > c.maxPend {
		c.maxPend = pending
	}
}

func TestEngineTelemetry(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i)*Nanosecond, func() {})
	}
	if got := e.Telemetry().PeakPending; got != 10 {
		t.Errorf("PeakPending before run = %d, want 10", got)
	}
	e.Run()
	tel := e.Telemetry()
	if tel.Events != 10 {
		t.Errorf("Events = %d, want 10", tel.Events)
	}
	if tel.PeakPending != 10 {
		t.Errorf("PeakPending = %d, want 10", tel.PeakPending)
	}
	if tel.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", tel.Wall)
	}
	if tel.EventsPerSecond() <= 0 {
		t.Errorf("EventsPerSecond = %v, want > 0", tel.EventsPerSecond())
	}
}

func TestEngineTelemetryZero(t *testing.T) {
	var tel Telemetry
	if got := tel.EventsPerSecond(); got != 0 {
		t.Errorf("zero-value EventsPerSecond = %v, want 0", got)
	}
}

func TestEngineEventProbe(t *testing.T) {
	e := NewCalendarEngine()
	p := &countingProbe{}
	e.SetProbe(p)
	// A chain of nested events: each schedules the next, so the probe
	// must see every one with the post-pop pending count.
	var n int
	var step func()
	step = func() {
		n++
		if n < 5 {
			e.After(Nanosecond, step)
		}
	}
	e.After(0, step)
	e.Run()
	if p.events != 5 {
		t.Errorf("probe saw %d events, want 5", p.events)
	}
	e.SetProbe(nil) // detaching must not break the loop
	e.After(0, func() {})
	e.Run()
	if p.events != 5 {
		t.Errorf("detached probe saw %d events, want 5", p.events)
	}
}
