package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Action is the typed, allocation-free form of an event callback.
// Schedule's func() form allocates a closure per event; ScheduleAction
// instead stores an interface pointer plus two integer arguments
// directly in the event record, so long-lived handlers (or pooled
// records that implement Action themselves) schedule without touching
// the heap. The packet simulator's per-hop events use this path.
type Action interface {
	// Run executes the event with the two integer arguments it was
	// scheduled with.
	Run(a, b int64)
}

// event is a scheduled callback: either a closure (fn) or a typed
// action with its arguments. Events are stored by value in the queue
// backends — no boxing, no per-event allocation.
type event struct {
	at   Time
	seq  uint64 // schedule order; breaks ties deterministically
	fn   func()
	act  Action
	a, b int64
}

// EventProbe observes the engine's event loop. Event is called after
// every processed event with the virtual time it ran at and the number
// of events still pending. With no probe attached the loop pays a
// single nil check per event.
type EventProbe interface {
	Event(at Time, pending int)
}

// Telemetry summarizes a run: how much work the engine did and how fast
// the wall clock saw it go.
type Telemetry struct {
	// Events is the number of events processed so far.
	Events uint64
	// PeakPending is the high-water mark of the event queue — the
	// largest calendar/heap the run ever held.
	PeakPending int
	// Wall is the real time spent inside Run/RunUntil.
	Wall time.Duration
	// Shards breaks the totals down per shard for a ShardedEngine run;
	// nil for a single Engine. The aggregate fields above cover all
	// shards (Events is the sum; Wall is the synchronizer's wall time,
	// not the sum of per-shard loop times, so EventsPerSecond reports
	// the real parallel throughput).
	Shards []ShardTelemetry
}

// EventsPerSecond returns the wall-clock event rate (0 before any run).
func (t Telemetry) EventsPerSecond() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Events) / t.Wall.Seconds()
}

// ShardTelemetry is one shard's slice of a ShardedEngine run.
type ShardTelemetry struct {
	// Shard is the shard index.
	Shard int
	// Events is the number of events this shard's engine processed.
	Events uint64
	// PeakPending is this shard's event-queue high-water mark.
	PeakPending int
	// Wall is the wall-clock time this shard's loop spent processing
	// (its goroutine's share; shards run concurrently, so these
	// overlap rather than sum to the run's wall time).
	Wall time.Duration
}

// EventsPerSecond returns the shard's wall-clock event rate (0 before
// any run).
func (t ShardTelemetry) EventsPerSecond() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Events) / t.Wall.Seconds()
}

// Engine is a single-threaded discrete-event simulator.
//
// Events scheduled for the same instant run in the order they were
// scheduled, which makes every simulation deterministic. An Engine is not
// safe for concurrent use; run independent simulations in independent
// Engines (they share nothing).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	ran     uint64
	peak    int
	wall    time.Duration
	probe   EventProbe

	// runStart/running track the in-progress Run/RunUntil call so
	// heartbeat events can see live wall time (wallNow).
	runStart time.Time
	running  bool
}

// NewEngine returns an engine with the clock at zero, backed by a
// binary-heap event queue.
func NewEngine() *Engine {
	return &Engine{queue: &heapQueue{}}
}

// NewCalendarEngine returns an engine backed by a calendar queue, which
// approaches O(1) per event on dense packet workloads. Event ordering
// (and therefore every simulation result) is identical to NewEngine's.
func NewCalendarEngine() *Engine {
	return &Engine{queue: newCalendarQueue()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.size() }

// SetProbe attaches an event-loop observer (nil detaches it).
func (e *Engine) SetProbe(p EventProbe) { e.probe = p }

// Telemetry reports the run so far: events processed, the queue's
// high-water mark, and wall-clock time spent in Run/RunUntil.
func (e *Engine) Telemetry() Telemetry {
	return Telemetry{Events: e.ran, PeakPending: e.peak, Wall: e.wall}
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
//
// Schedule is the setup/test-convenience form, deprecated on hot
// paths: each call boxes fn into a heap-allocated closure (typically
// one allocation per event, plus whatever the closure captures). Code
// that schedules per packet or per hop should implement Action once
// and use ScheduleAction, which stores an interface pointer plus two
// integers in the event record and allocates nothing — that is the
// invariant TestScheduleActionZeroAllocs pins. Reaching the engine
// through the Scheduler interface does not change this: both forms are
// on the interface, and the Action form is the hot-path one.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
	if s := e.queue.size(); s > e.peak {
		e.peak = s
	}
}

// ScheduleAction runs act.Run(a, b) at absolute virtual time at — the
// zero-allocation form of Schedule (see Action). Ties with closure
// events at the same instant break by schedule order, exactly as for
// Schedule.
func (e *Engine) ScheduleAction(at Time, act Action, a, b int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, act: act, a: a, b: b})
	if s := e.queue.size(); s > e.peak {
		e.peak = s
	}
}

// After runs fn delay after the current time. Like Schedule, the
// closure form allocates; prefer AfterAction on per-packet paths.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// AfterAction runs act.Run(a, b) delay after the current time.
func (e *Engine) AfterAction(delay Time, act Action, a, b int64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleAction(e.now+delay, act, a, b)
}

// ScheduleFlex runs fn at absolute virtual time at, allowing the
// execution to slip up to tol later. On a single-threaded Engine there
// is no barrier cost to amortize, so the tolerance is ignored and fn
// runs exactly at at; a ShardedEngine uses the slack to coalesce
// periodic global work (heartbeats, samplers) into fewer
// all-shards-parked phases. See ShardedEngine.ScheduleFlex.
func (e *Engine) ScheduleFlex(at, tol Time, fn func()) {
	if tol < 0 {
		panic(fmt.Sprintf("sim: negative coalescing tolerance %v", tol))
	}
	e.Schedule(at, fn)
}

// AfterFlex is ScheduleFlex with a delay relative to the current time.
func (e *Engine) AfterFlex(delay, tol Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleFlex(e.now+delay, tol, fn)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// RunUntil processes events with timestamps <= end, then advances the
// clock to end (if it is later than the last event). Events scheduled at
// exactly end are processed.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	start := time.Now()
	startRan := e.ran
	e.runStart = start
	e.running = true
	for e.queue.size() > 0 && !e.stopped {
		if e.queue.peekAt() > end {
			break
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.ran++
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.act.Run(ev.a, ev.b)
		}
		if e.probe != nil {
			e.probe.Event(e.now, e.queue.size())
		}
	}
	e.running = false
	e.wall += time.Since(start)
	totalEvents.Add(e.ran - startRan)
	if e.now < end && end < MaxTime {
		e.now = end
	}
}

// NextEventAt returns the timestamp of the earliest pending event, and
// whether one exists. The sharded synchronizer uses it to compute the
// global lower bound on the next event time.
func (e *Engine) NextEventAt() (Time, bool) {
	if e.queue.size() == 0 {
		return 0, false
	}
	return e.queue.peekAt(), true
}

// advanceTo moves the clock forward to at without processing events.
// The sharded synchronizer calls it (with the shard parked) before
// running a global phase, so that Now() inside global events reads the
// global time on every shard. at must not be before now or past the
// next pending event; both would reorder causality.
func (e *Engine) advanceTo(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", at, e.now))
	}
	if e.queue.size() > 0 && e.queue.peekAt() < at {
		panic(fmt.Sprintf("sim: advance to %v past pending event at %v", at, e.queue.peekAt()))
	}
	e.now = at
}

// wallNow returns wall-clock time spent in Run/RunUntil so far,
// including the in-progress call — what a heartbeat event firing inside
// the loop needs to compute a live event rate.
func (e *Engine) wallNow() time.Duration {
	if e.running {
		return e.wall + time.Since(e.runStart)
	}
	return e.wall
}

// totalEvents counts events processed across every Engine in the
// process — the denominator tools like quartzbench use to report
// per-experiment events/sec without threading telemetry through each
// experiment. Atomic: engines may run on concurrent goroutines.
var totalEvents atomic.Uint64

// TotalEvents returns the number of simulation events processed by all
// engines in this process so far. The counter is updated when a
// Run/RunUntil call returns.
func TotalEvents() uint64 { return totalEvents.Load() }
