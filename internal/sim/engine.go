package sim

import (
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // schedule order; breaks ties deterministically
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// Events scheduled for the same instant run in the order they were
// scheduled, which makes every simulation deterministic. An Engine is not
// safe for concurrent use; run independent simulations in independent
// Engines (they share nothing).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	ran     uint64
}

// NewEngine returns an engine with the clock at zero, backed by a
// binary-heap event queue.
func NewEngine() *Engine {
	return &Engine{queue: &heapQueue{}}
}

// NewCalendarEngine returns an engine backed by a calendar queue, which
// approaches O(1) per event on dense packet workloads. Event ordering
// (and therefore every simulation result) is identical to NewEngine's.
func NewCalendarEngine() *Engine {
	return &Engine{queue: newCalendarQueue()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.size() }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// After runs fn delay after the current time.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1)<<62 - 1)
}

// RunUntil processes events with timestamps <= end, then advances the
// clock to end (if it is later than the last event). Events scheduled at
// exactly end are processed.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for e.queue.size() > 0 && !e.stopped {
		if e.queue.peekAt() > end {
			break
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.ran++
		ev.fn()
	}
	if e.now < end && end < Time(1)<<62-1 {
		e.now = end
	}
}
