package flowsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// line builds h0 - s0 - s1 - h1 with 10 Gb/s links.
func line(t testing.TB) (*topology.Graph, topology.NodeID, topology.NodeID) {
	t.Helper()
	g := topology.New("line")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	g.Connect(h0, s0, 10*sim.Gbps, 0)
	g.Connect(s0, s1, 10*sim.Gbps, 0)
	g.Connect(s1, h1, 10*sim.Gbps, 0)
	return g, h0, h1
}

func TestSingleFlowGetsLinkRate(t *testing.T) {
	g, h0, h1 := line(t)
	f, err := ShortestPathFlow(g, h0, h1, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(g, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rates[0]; math.Abs(got-1e10) > 1e4 {
		t.Errorf("rate = %v, want 10G", got)
	}
}

func TestDemandCap(t *testing.T) {
	g, h0, h1 := line(t)
	f, err := ShortestPathFlow(g, h0, h1, 2*sim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(g, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rates[0]; math.Abs(got-2e9) > 1e4 {
		t.Errorf("rate = %v, want capped at 2G", got)
	}
}

func TestFairSharingTwoFlows(t *testing.T) {
	// Two hosts on s0 send to the same host on s1: the s0-s1 link (or
	// the receiver's access link) splits evenly.
	g := topology.New("share")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	a0 := g.AddHost("a0", 0)
	a1 := g.AddHost("a1", 0)
	b := g.AddHost("b", 1)
	g.Connect(a0, s0, 10*sim.Gbps, 0)
	g.Connect(a1, s0, 10*sim.Gbps, 0)
	g.Connect(s0, s1, 10*sim.Gbps, 0)
	g.Connect(s1, b, 10*sim.Gbps, 0)
	f0, _ := ShortestPathFlow(g, a0, b, 0)
	f1, _ := ShortestPathFlow(g, a1, b, 0)
	alloc, err := Allocate(g, []Flow{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range alloc.Rates {
		if math.Abs(r-5e9) > 1e5 {
			t.Errorf("flow %d rate = %v, want 5G", i, r)
		}
	}
}

func TestMaxMinNotJustEqual(t *testing.T) {
	// Classic max-min: flows A->C (long) and A->B, B->C (short) on a
	// 3-node path with unit links. Long flow gets 1/2 on both links;
	// short flows each get 1/2... actually with one long flow and one
	// short flow per link, each link splits evenly: all get 5G. Add a
	// second short flow on the first link to break symmetry: then the
	// first link gives 10/3 each, and the long flow is frozen at 10/3,
	// leaving the short flow on link 2 with 20/3.
	g := topology.New("maxmin")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	s2 := g.AddSwitch("s2", topology.TierToR, 2)
	hA := g.AddHost("hA", 0)
	hA2 := g.AddHost("hA2", 0)
	hB := g.AddHost("hB", 1)
	hC := g.AddHost("hC", 2)
	g.Connect(hA, s0, 100*sim.Gbps, 0)
	g.Connect(hA2, s0, 100*sim.Gbps, 0)
	g.Connect(hB, s1, 100*sim.Gbps, 0)
	g.Connect(hC, s2, 100*sim.Gbps, 0)
	g.Connect(s0, s1, 10*sim.Gbps, 0)
	g.Connect(s1, s2, 10*sim.Gbps, 0)

	long := Flow{Src: hA, Dst: hC, Subflows: []Subflow{{Path: []topology.NodeID{hA, s0, s1, s2, hC}, Weight: 1}}}
	short1 := Flow{Src: hA2, Dst: hB, Subflows: []Subflow{{Path: []topology.NodeID{hA2, s0, s1, hB}, Weight: 1}}}
	short2 := Flow{Src: hB, Dst: hC, Subflows: []Subflow{{Path: []topology.NodeID{hB, s1, s2, hC}, Weight: 1}}}
	// Second flow on the first link.
	extra := Flow{Src: hA, Dst: hB, Subflows: []Subflow{{Path: []topology.NodeID{hA, s0, s1, hB}, Weight: 1}}}

	alloc, err := Allocate(g, []Flow{long, short1, short2, extra})
	if err != nil {
		t.Fatal(err)
	}
	third := 1e10 / 3
	if math.Abs(alloc.Rates[0]-third) > 1e5 {
		t.Errorf("long flow = %v, want %v", alloc.Rates[0], third)
	}
	if math.Abs(alloc.Rates[1]-third) > 1e5 {
		t.Errorf("short1 = %v, want %v", alloc.Rates[1], third)
	}
	want2 := 1e10 - third
	if math.Abs(alloc.Rates[2]-want2) > 1e5 {
		t.Errorf("short2 = %v, want %v (max-min, not equal shares)", alloc.Rates[2], want2)
	}
}

func TestMultipathSubflows(t *testing.T) {
	// Mesh of 3 switches, one flow split 50/50 between the direct path
	// and the two-hop path: total = 10G direct + 10G indirect bottleneck
	// halves... with only this flow, both paths are uncontended, so the
	// flow should reach min(NIC, sum of path capacities) — but each
	// subflow grows at its weight rate until a link saturates. The
	// direct subflow (weight .5) saturates s0-s1 at 10G giving 10G? No:
	// level rises until the first bottleneck: direct subflow rate = .5L,
	// indirect = .5L; host link carries L. Host link (10G) saturates at
	// L=10G: total flow rate 10G with 5G on each path.
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 3, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	sw := g.Switches()
	f := Flow{Src: hosts[0], Dst: hosts[1], Subflows: []Subflow{
		{Path: []topology.NodeID{hosts[0], sw[0], sw[1], hosts[1]}, Weight: 0.5},
		{Path: []topology.NodeID{hosts[0], sw[0], sw[2], sw[1], hosts[1]}, Weight: 0.5},
	}}
	alloc, err := Allocate(g, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.Rates[0]-1e10) > 1e5 {
		t.Errorf("multipath flow = %v, want 10G (NIC bound)", alloc.Rates[0])
	}
}

func TestVLBFlowConstruction(t *testing.T) {
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 6, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	f, err := VLBFlow(g, hosts[0], hosts[len(hosts)-1], 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 direct + 4 detours.
	if len(f.Subflows) != 5 {
		t.Fatalf("subflows = %d, want 5", len(f.Subflows))
	}
	w := 0.0
	for _, sf := range f.Subflows {
		w += sf.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("weights sum to %v", w)
	}
	// Same-rack case.
	f2, err := VLBFlow(g, hosts[0], hosts[1], 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Subflows) != 1 {
		t.Errorf("same-rack subflows = %d, want 1", len(f2.Subflows))
	}
	if _, err := VLBFlow(g, hosts[0], hosts[2], 1.5, 0); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestVLBBeatsDirectOnHotPair(t *testing.T) {
	// The pathological pattern of §7.2: many flows between one switch
	// pair. Direct-only caps at the single inter-switch link; VLB
	// spreads over detours and wins.
	g, err := topology.NewFullMesh(topology.MeshConfig{
		Switches: 4, HostsPerSwitch: 4,
		MeshLink: topology.LinkSpec{Rate: 40 * sim.Gbps},
		HostLink: topology.LinkSpec{Rate: 40 * sim.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := g.HostsInRack(0)
	dst := g.HostsInRack(1)

	var direct, vlb []Flow
	for i := range src {
		fd, err := ShortestPathFlow(g, src[i], dst[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, fd)
		fv, err := VLBFlow(g, src[i], dst[i], 0.25, 0)
		if err != nil {
			t.Fatal(err)
		}
		vlb = append(vlb, fv)
	}
	ad, err := Allocate(g, direct)
	if err != nil {
		t.Fatal(err)
	}
	av, err := Allocate(g, vlb)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: 4 flows share one 40G link -> 40G total.
	if math.Abs(ad.Total()-4e10) > 1e6 {
		t.Errorf("direct total = %v, want 40G", ad.Total())
	}
	// VLB: direct link + 2 two-hop paths -> up to 120G of switch-to-
	// switch capacity; must beat direct-only clearly.
	if av.Total() < 1.8*ad.Total() {
		t.Errorf("VLB total = %v, direct = %v; expected VLB to roughly double", av.Total(), ad.Total())
	}
}

func TestAllocateErrors(t *testing.T) {
	g, h0, h1 := line(t)
	cases := map[string]Flow{
		"no subflows": {Src: h0, Dst: h1},
		"short path":  {Src: h0, Dst: h1, Subflows: []Subflow{{Path: []topology.NodeID{h0}, Weight: 1}}},
		"bad endpoints": {Src: h0, Dst: h1, Subflows: []Subflow{
			{Path: []topology.NodeID{h1, g.Switches()[1], g.Switches()[0], h0}, Weight: 1}}},
		"zero weight": {Src: h0, Dst: h1, Subflows: []Subflow{
			{Path: []topology.NodeID{h0, g.Switches()[0], g.Switches()[1], h1}, Weight: 0}}},
		"weights not 1": {Src: h0, Dst: h1, Subflows: []Subflow{
			{Path: []topology.NodeID{h0, g.Switches()[0], g.Switches()[1], h1}, Weight: 0.5}}},
		"nonexistent link": {Src: h0, Dst: h1, Subflows: []Subflow{
			{Path: []topology.NodeID{h0, g.Switches()[1], h1}, Weight: 1}}},
	}
	for name, f := range cases {
		if _, err := Allocate(g, []Flow{f}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNormalizedThroughput(t *testing.T) {
	g, h0, h1 := line(t)
	f, _ := ShortestPathFlow(g, h0, h1, 0)
	a, err := Allocate(g, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	nt := a.NormalizedThroughput([]Flow{f}, 10*sim.Gbps)
	if math.Abs(nt-1) > 1e-6 {
		t.Errorf("normalized throughput = %v, want 1", nt)
	}
	if (&Allocation{}).NormalizedThroughput(nil, 10*sim.Gbps) != 0 {
		t.Error("empty normalization should be 0")
	}
}

func TestMinAndTotal(t *testing.T) {
	a := &Allocation{Rates: []float64{3, 1, 2}}
	if a.Min() != 1 || a.Total() != 6 {
		t.Errorf("Min=%v Total=%v, want 1/6", a.Min(), a.Total())
	}
	empty := &Allocation{}
	if empty.Min() != 0 {
		t.Error("empty Min should be 0")
	}
}

// TestAllocationFeasibilityProperty property-checks the core invariant:
// no directed link ever carries more than its capacity, and every flow
// respects its demand.
func TestAllocationFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 3
		g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: 2})
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		nFlows := rng.Intn(10) + 1
		flows := make([]Flow, 0, nFlows)
		for i := 0; i < nFlows; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			demand := sim.Rate(0)
			if rng.Intn(2) == 0 {
				demand = sim.Rate(rng.Intn(10)+1) * sim.Gbps
			}
			var fl Flow
			var err error
			if rng.Intn(2) == 0 {
				fl, err = ShortestPathFlow(g, src, dst, demand)
			} else {
				fl, err = VLBFlow(g, src, dst, 0.5, demand)
			}
			if err != nil {
				return false
			}
			flows = append(flows, fl)
		}
		if len(flows) == 0 {
			return true
		}
		alloc, err := Allocate(g, flows)
		if err != nil {
			return false
		}
		// Check demands.
		for i, f := range flows {
			if f.Demand > 0 && alloc.Rates[i] > float64(f.Demand)*(1+1e-6) {
				return false
			}
			if alloc.Rates[i] < 0 {
				return false
			}
		}
		// Recompute link loads from subflow definitions: total flow rate
		// times subflow weight is the subflow rate only before freezing
		// diverges... so instead check the weaker but meaningful
		// invariant that no access link is overloaded: each host's
		// egress carries at most its link rate.
		egress := map[topology.NodeID]float64{}
		for i, f := range flows {
			egress[f.Src] += alloc.Rates[i]
		}
		for h, rate := range egress {
			l, ok := g.FindLink(h, g.ToRof(h))
			if !ok {
				return false
			}
			if rate > float64(l.Rate)*(1+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
