// Package flowsim allocates bandwidth to flows with progressive
// max-min water-filling, the standard fluid model for steady-state TCP
// fair sharing. The Quartz paper uses this style of simulation to
// compare aggregate throughput against ideal (full-bisection) networks
// (§5.1, Figure 10).
//
// A flow follows one or more fixed paths (multipath flows split across
// subflows, modelling ECMP/VLB). Each directed link has a capacity;
// water-filling repeatedly finds the bottleneck link with the smallest
// per-subflow fair share, freezes the subflows through it, and
// continues until every subflow is frozen.
package flowsim

import (
	"fmt"
	"math"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// DirLink identifies one direction of a topology link.
type DirLink struct {
	Link topology.LinkID
	// From is the transmitting endpoint.
	From topology.NodeID
}

// Subflow is one path of a flow with a share of the flow's traffic.
type Subflow struct {
	// Path is the node sequence from source to destination.
	Path []topology.NodeID
	// Weight is the fraction of the flow carried (weights of a flow
	// should sum to 1).
	Weight float64
}

// Flow is a demand between two hosts.
type Flow struct {
	Src, Dst topology.NodeID
	// Subflows carry the traffic; at least one is required.
	Subflows []Subflow
	// Demand caps the flow's rate in bits/s; 0 means unbounded
	// (limited only by the network).
	Demand sim.Rate
}

// Allocation reports the outcome for each flow.
type Allocation struct {
	// Rates holds each flow's total achieved rate, in bits/s.
	Rates []float64
}

// Allocate computes the max-min fair allocation for flows on g. Every
// subflow's links are checked to exist in g.
func Allocate(g *topology.Graph, flows []Flow) (*Allocation, error) {
	type sub struct {
		flow   int
		links  []int // indices into capacity slice (2*link+dir)
		weight float64
		rate   float64
		frozen bool
	}

	capacity := make([]float64, 2*g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		capacity[2*i] = float64(l.Rate)
		capacity[2*i+1] = float64(l.Rate)
	}

	dirIndex := func(from, to topology.NodeID) (int, error) {
		for _, p := range g.Ports(from) {
			if p.Peer == to {
				idx := 2 * int(p.Link)
				if g.Link(p.Link).B == from {
					idx++
				}
				return idx, nil
			}
		}
		return 0, fmt.Errorf("flowsim: no link %d-%d", from, to)
	}

	var subs []*sub
	for fi, f := range flows {
		if len(f.Subflows) == 0 {
			return nil, fmt.Errorf("flowsim: flow %d has no subflows", fi)
		}
		totalW := 0.0
		for si, sf := range f.Subflows {
			if len(sf.Path) < 2 {
				return nil, fmt.Errorf("flowsim: flow %d subflow %d path too short", fi, si)
			}
			if sf.Path[0] != f.Src || sf.Path[len(sf.Path)-1] != f.Dst {
				return nil, fmt.Errorf("flowsim: flow %d subflow %d endpoints do not match flow", fi, si)
			}
			if sf.Weight <= 0 {
				return nil, fmt.Errorf("flowsim: flow %d subflow %d non-positive weight", fi, si)
			}
			totalW += sf.Weight
			s := &sub{flow: fi, weight: sf.Weight}
			for h := 0; h+1 < len(sf.Path); h++ {
				idx, err := dirIndex(sf.Path[h], sf.Path[h+1])
				if err != nil {
					return nil, fmt.Errorf("flow %d subflow %d hop %d: %w", fi, si, h, err)
				}
				s.links = append(s.links, idx)
			}
			subs = append(subs, s)
		}
		if math.Abs(totalW-1) > 1e-9 {
			return nil, fmt.Errorf("flowsim: flow %d subflow weights sum to %v, want 1", fi, totalW)
		}
	}

	// Demand-capped flows are modelled by a virtual access link of
	// exactly the demand, shared by the flow's subflows.
	demandCap := make([]float64, len(flows))
	for fi, f := range flows {
		if f.Demand > 0 {
			demandCap[fi] = float64(f.Demand)
		} else {
			demandCap[fi] = math.Inf(1)
		}
		_ = fi
	}

	// Progressive filling on weighted subflows. In each round, compute
	// for every unfrozen subflow the max rate each of its links allows
	// (remaining capacity split by weight among unfrozen subflows), take
	// the global minimum increment, apply it, and freeze saturated
	// subflows. Link weights are recomputed from scratch each round:
	// incremental maintenance leaves floating-point residue on fully
	// frozen links, which can poison the level computation.
	remaining := append([]float64(nil), capacity...)
	linkWeight := make([]float64, len(capacity))
	saturated := func(li int) bool {
		return remaining[li] <= 1e-6*capacity[li]+1e-9
	}
	flowRate := make([]float64, len(flows))
	flowFrozen := make([]bool, len(flows))

	unfrozen := len(subs)
	for unfrozen > 0 {
		for i := range linkWeight {
			linkWeight[i] = 0
		}
		fw := make([]float64, len(flows))
		for _, s := range subs {
			if s.frozen {
				continue
			}
			fw[s.flow] += s.weight
			for _, l := range s.links {
				linkWeight[l] += s.weight
			}
		}
		// Fair-share level: the smallest level at which either a link
		// saturates or a flow hits its demand. Already-saturated links
		// are excluded — their subflows freeze below regardless.
		level := math.Inf(1)
		argmin := -1
		for li, w := range linkWeight {
			if w <= 0 || saturated(li) {
				continue
			}
			if l := remaining[li] / w; l < level {
				level, argmin = l, li
			}
		}
		for fi := range flows {
			if flowFrozen[fi] || fw[fi] <= 0 {
				continue
			}
			if headroom := demandCap[fi] - flowRate[fi]; headroom/fw[fi] < level {
				level = headroom / fw[fi]
			}
		}
		if math.IsInf(level, 1) {
			break // nothing constrains the remaining subflows
		}
		if level < 0 {
			level = 0
		}
		// Apply the increment.
		for _, s := range subs {
			if s.frozen {
				continue
			}
			inc := s.weight * level
			s.rate += inc
			flowRate[s.flow] += inc
			for _, l := range s.links {
				remaining[l] -= inc
			}
		}
		// Freeze demand-satisfied flows and subflows crossing saturated
		// links.
		for fi := range flows {
			if !flowFrozen[fi] && flowRate[fi] >= demandCap[fi]-1e-6 {
				flowFrozen[fi] = true
			}
		}
		progressed := false
		for _, s := range subs {
			if s.frozen {
				continue
			}
			done := flowFrozen[s.flow]
			if !done {
				for _, l := range s.links {
					if saturated(l) {
						done = true
						break
					}
				}
			}
			if done {
				s.frozen = true
				unfrozen--
				progressed = true
			}
		}
		if !progressed {
			// Numeric safety valve: force the bottleneck link closed so
			// the loop always terminates.
			if argmin < 0 {
				break
			}
			remaining[argmin] = 0
			for _, s := range subs {
				if s.frozen {
					continue
				}
				for _, l := range s.links {
					if l == argmin {
						s.frozen = true
						unfrozen--
						break
					}
				}
			}
		}
	}
	return &Allocation{Rates: flowRate}, nil
}

// Total returns the aggregate allocated rate.
func (a *Allocation) Total() float64 {
	t := 0.0
	for _, r := range a.Rates {
		t += r
	}
	return t
}

// Min returns the smallest flow rate (0 for an empty allocation).
func (a *Allocation) Min() float64 {
	if len(a.Rates) == 0 {
		return 0
	}
	m := a.Rates[0]
	for _, r := range a.Rates[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// NormalizedThroughput returns Total divided by the sum of the flows'
// ideal rates (their demands, or the given NIC rate for unbounded
// flows) — the y-axis of Figure 10.
func (a *Allocation) NormalizedThroughput(flows []Flow, nic sim.Rate) float64 {
	ideal := 0.0
	for _, f := range flows {
		if f.Demand > 0 {
			ideal += float64(f.Demand)
		} else {
			ideal += float64(nic)
		}
	}
	if ideal == 0 {
		return 0
	}
	return a.Total() / ideal
}

// ShortestPathFlow builds a single-subflow Flow along one shortest path.
func ShortestPathFlow(g *topology.Graph, src, dst topology.NodeID, demand sim.Rate) (Flow, error) {
	p := g.ShortestPath(src, dst, nil)
	if p == nil {
		return Flow{}, fmt.Errorf("flowsim: no path %d -> %d", src, dst)
	}
	return Flow{Src: src, Dst: dst, Demand: demand, Subflows: []Subflow{{Path: p, Weight: 1}}}, nil
}

// VLBFlow builds a Flow on a full mesh that splits traffic between the
// direct path and two-hop detours through every other switch, the §3.4
// configuration: directFrac on the direct path and the rest spread
// evenly over the detours.
func VLBFlow(g *topology.Graph, src, dst topology.NodeID, directFrac float64, demand sim.Rate) (Flow, error) {
	if directFrac < 0 || directFrac > 1 {
		return Flow{}, fmt.Errorf("flowsim: direct fraction %v out of range", directFrac)
	}
	sSw, dSw := g.ToRof(src), g.ToRof(dst)
	f := Flow{Src: src, Dst: dst, Demand: demand}
	if sSw == dSw {
		f.Subflows = []Subflow{{Path: []topology.NodeID{src, sSw, dst}, Weight: 1}}
		return f, nil
	}
	var mids []topology.NodeID
	for _, sw := range g.Switches() {
		if sw == sSw || sw == dSw {
			continue
		}
		if _, ok := g.FindLink(sSw, sw); !ok {
			continue
		}
		if _, ok := g.FindLink(sw, dSw); !ok {
			continue
		}
		mids = append(mids, sw)
	}
	if len(mids) == 0 {
		directFrac = 1
	}
	if directFrac > 0 {
		f.Subflows = append(f.Subflows, Subflow{
			Path:   []topology.NodeID{src, sSw, dSw, dst},
			Weight: directFrac,
		})
	}
	if directFrac < 1 {
		w := (1 - directFrac) / float64(len(mids))
		for _, mid := range mids {
			f.Subflows = append(f.Subflows, Subflow{
				Path:   []topology.NodeID{src, sSw, mid, dSw, dst},
				Weight: w,
			})
		}
	}
	return f, nil
}
