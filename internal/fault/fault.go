// Package fault evaluates Quartz ring resilience to fiber cuts (§3.5,
// Figure 6 of the paper). A Quartz deployment carries its wavelength
// channels on one or more physical fiber rings; a fiber cut on one ring
// segment destroys every channel whose arc crosses that segment on that
// ring. The package measures, by Monte-Carlo simulation:
//
//   - aggregate bandwidth loss: the fraction of logical mesh links
//     (switch pairs) destroyed, and
//   - partition probability: whether the surviving logical mesh (using
//     multi-hop paths) still connects all switches.
package fault

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/wdm"
)

// Result summarizes a Monte-Carlo run.
type Result struct {
	// Rings is the number of physical fiber rings.
	Rings int
	// Cuts is the number of simultaneously failed fiber segments.
	Cuts int
	// Trials is the number of Monte-Carlo trials.
	Trials int
	// AvgBandwidthLoss is the mean fraction of logical links lost.
	AvgBandwidthLoss float64
	// PartitionProb is the fraction of trials in which the surviving
	// logical mesh was disconnected.
	PartitionProb float64
}

// model precomputes, for each channel assignment, the fiber segments it
// crosses as a (ring, bitmask) pair. Ring sizes are <= 64 so a uint64
// mask covers all segments.
type model struct {
	m     int
	rings int
	// arcs[i] is the segment mask of assignment i; arcRing[i] its ring.
	arcs    []uint64
	arcRing []int
	pairs   [][2]int
}

func newModel(plan *wdm.Plan) (*model, error) {
	if plan.M < 2 {
		return nil, fmt.Errorf("fault: ring too small (M=%d)", plan.M)
	}
	if plan.M > 64 {
		return nil, fmt.Errorf("fault: M=%d exceeds the 64-segment mask", plan.M)
	}
	rings := plan.Rings
	if rings == 0 {
		rings = 1
	}
	md := &model{m: plan.M, rings: rings}
	for _, a := range plan.Assignments {
		var mask uint64
		// Walk the arc from S to T in its assigned direction, collecting
		// fiber segment indices (segment i joins switch i and i+1).
		switch a.Dir {
		case wdm.Clockwise:
			for i := a.S; i != a.T; i = (i + 1) % plan.M {
				mask |= 1 << uint(i)
			}
		case wdm.CounterClockwise:
			for i := a.S; i != a.T; i = (i - 1 + plan.M) % plan.M {
				mask |= 1 << uint((i-1+plan.M)%plan.M)
			}
		}
		md.arcs = append(md.arcs, mask)
		md.arcRing = append(md.arcRing, a.Ring)
		md.pairs = append(md.pairs, [2]int{a.S, a.T})
	}
	return md, nil
}

// Simulate runs trials of cutting `cuts` distinct fiber segments
// (chosen uniformly over all rings' segments) on the given plan.
func Simulate(plan *wdm.Plan, cuts, trials int, rng *rand.Rand) (Result, error) {
	if cuts < 0 {
		return Result{}, fmt.Errorf("fault: negative cuts")
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("fault: need at least one trial")
	}
	if rng == nil {
		return Result{}, fmt.Errorf("fault: nil rng")
	}
	md, err := newModel(plan)
	if err != nil {
		return Result{}, err
	}
	totalFibers := md.rings * md.m
	if cuts > totalFibers {
		return Result{}, fmt.Errorf("fault: %d cuts exceed %d fiber segments", cuts, totalFibers)
	}

	res := Result{Rings: md.rings, Cuts: cuts, Trials: trials}
	lossSum := 0.0
	partitions := 0

	cutMask := make([]uint64, md.rings)
	parent := make([]int, md.m)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	for t := 0; t < trials; t++ {
		for r := range cutMask {
			cutMask[r] = 0
		}
		// Sample `cuts` distinct fibers by rejection (cuts is tiny).
		chosen := 0
		for chosen < cuts {
			f := rng.Intn(totalFibers)
			r, seg := f/md.m, f%md.m
			bit := uint64(1) << uint(seg)
			if cutMask[r]&bit != 0 {
				continue
			}
			cutMask[r] |= bit
			chosen++
		}
		// Surviving logical links and connectivity.
		for i := range parent {
			parent[i] = i
		}
		lost := 0
		comps := md.m
		for i, mask := range md.arcs {
			if mask&cutMask[md.arcRing[i]] != 0 {
				lost++
				continue
			}
			a, b := find(md.pairs[i][0]), find(md.pairs[i][1])
			if a != b {
				parent[a] = b
				comps--
			}
		}
		lossSum += float64(lost) / float64(len(md.arcs))
		if comps > 1 {
			partitions++
		}
	}
	res.AvgBandwidthLoss = lossSum / float64(trials)
	res.PartitionProb = float64(partitions) / float64(trials)
	return res, nil
}

// Sweep reproduces Figure 6's grid: for each ring count 1..maxRings, it
// builds the channel plan for a ring of the given size, splits it
// across that many fibers, and simulates 1..maxCuts simultaneous cuts.
// Results are indexed [rings-1][cuts-1]. Cancelling ctx aborts between
// cells with ctx.Err(); a nil ctx means no cancellation.
func Sweep(ctx context.Context, ringSize, maxRings, maxCuts, trials int, rng *rand.Rand) ([][]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxRings < 1 || maxCuts < 1 {
		return nil, fmt.Errorf("fault: invalid sweep %dx%d", maxRings, maxCuts)
	}
	base := wdm.Greedy(ringSize, rng)
	out := make([][]Result, maxRings)
	for r := 1; r <= maxRings; r++ {
		// Channels are dealt round-robin across r fibers; per-fiber
		// capacity is whatever that requires (the paper's deployments
		// add whole muxes per ring as needed).
		per := (base.Channels + r - 1) / r
		plan, err := wdm.SplitAcrossRings(base, r, per)
		if err != nil {
			return nil, err
		}
		out[r-1] = make([]Result, maxCuts)
		for c := 1; c <= maxCuts; c++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := Simulate(plan, c, trials, rng)
			if err != nil {
				return nil, err
			}
			out[r-1][c-1] = res
		}
	}
	return out, nil
}

// AvailabilityParams describes a fiber failure/repair process for
// steady-state availability analysis — the operational question behind
// §3.5: with real failure and repair rates, how often is the mesh
// degraded or partitioned?
type AvailabilityParams struct {
	// MTBFHours is each fiber segment's mean time between failures.
	MTBFHours float64
	// MTTRHours is the mean time to repair one cut.
	MTTRHours float64
	// Trials is the number of steady-state samples.
	Trials int
}

// AvailabilityResult summarizes steady-state behaviour.
type AvailabilityResult struct {
	Rings int
	// SegmentUnavailability is each fiber's independent probability of
	// being down: MTTR / (MTBF + MTTR).
	SegmentUnavailability float64
	// MeanBandwidthLoss is the expected fraction of logical links down
	// at a random instant.
	MeanBandwidthLoss float64
	// PartitionProb is the probability the logical mesh is partitioned
	// at a random instant.
	PartitionProb float64
	// MeanConcurrentCuts is the expected number of simultaneously
	// failed fibers.
	MeanConcurrentCuts float64
}

// Availability samples the steady state of independent per-segment
// failure/repair processes: each fiber segment is down independently
// with probability MTTR/(MTBF+MTTR), the standard two-state Markov
// availability model.
func Availability(plan *wdm.Plan, p AvailabilityParams, rng *rand.Rand) (AvailabilityResult, error) {
	if p.MTBFHours <= 0 || p.MTTRHours <= 0 {
		return AvailabilityResult{}, fmt.Errorf("fault: MTBF and MTTR must be positive")
	}
	if p.Trials < 1 {
		return AvailabilityResult{}, fmt.Errorf("fault: need at least one trial")
	}
	if rng == nil {
		return AvailabilityResult{}, fmt.Errorf("fault: nil rng")
	}
	md, err := newModel(plan)
	if err != nil {
		return AvailabilityResult{}, err
	}
	unavail := p.MTTRHours / (p.MTBFHours + p.MTTRHours)
	res := AvailabilityResult{Rings: md.rings, SegmentUnavailability: unavail}

	cutMask := make([]uint64, md.rings)
	parent := make([]int, md.m)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	lossSum, cutsSum := 0.0, 0.0
	partitions := 0
	for t := 0; t < p.Trials; t++ {
		cuts := 0
		for r := 0; r < md.rings; r++ {
			cutMask[r] = 0
			for seg := 0; seg < md.m; seg++ {
				if rng.Float64() < unavail {
					cutMask[r] |= 1 << uint(seg)
					cuts++
				}
			}
		}
		cutsSum += float64(cuts)
		for i := range parent {
			parent[i] = i
		}
		lost := 0
		comps := md.m
		for i, mask := range md.arcs {
			if mask&cutMask[md.arcRing[i]] != 0 {
				lost++
				continue
			}
			a, b := find(md.pairs[i][0]), find(md.pairs[i][1])
			if a != b {
				parent[a] = b
				comps--
			}
		}
		lossSum += float64(lost) / float64(len(md.arcs))
		if comps > 1 {
			partitions++
		}
	}
	res.MeanBandwidthLoss = lossSum / float64(p.Trials)
	res.PartitionProb = float64(partitions) / float64(p.Trials)
	res.MeanConcurrentCuts = cutsSum / float64(p.Trials)
	return res, nil
}
