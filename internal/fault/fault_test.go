package fault

import (
	"context"
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/wdm"
)

func plan33(t testing.TB, rings int) *wdm.Plan {
	t.Helper()
	base := wdm.Greedy(33, rand.New(rand.NewSource(1)))
	if rings == 1 {
		return base
	}
	per := (base.Channels + rings - 1) / rings
	p, err := wdm.SplitAcrossRings(base, rings, per)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleCutSingleRing(t *testing.T) {
	// Figure 6: one ring, one fiber cut -> ~20% bandwidth loss, no
	// partitions (the logical mesh reroutes multi-hop).
	p := plan33(t, 1)
	res, err := Simulate(p, 1, 2000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionProb != 0 {
		t.Errorf("partition prob = %v, want 0 for a single cut", res.PartitionProb)
	}
	// Average loss = average link load / number of pairs ~ 137/528 ~ 26%.
	if res.AvgBandwidthLoss < 0.15 || res.AvgBandwidthLoss > 0.35 {
		t.Errorf("bandwidth loss = %v, want ~0.2-0.3 (paper: 20%%)", res.AvgBandwidthLoss)
	}
}

func TestTwoCutsPartitionSingleRing(t *testing.T) {
	// Two cuts on one ring always separate the switches between the
	// cuts from the rest: partition probability ~1 (paper: >90%).
	p := plan33(t, 1)
	res, err := Simulate(p, 2, 2000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionProb < 0.9 {
		t.Errorf("partition prob = %v, want > 0.9", res.PartitionProb)
	}
}

func TestSecondRingPreventsPartition(t *testing.T) {
	// Figure 6's headline: "by adding a single additional physical
	// ring, the probability of partitioning is less than 0.24% even
	// when four physical links fail."
	p := plan33(t, 2)
	res, err := Simulate(p, 4, 20000, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionProb > 0.01 {
		t.Errorf("partition prob with 2 rings / 4 cuts = %v, want < 1%%", res.PartitionProb)
	}
}

func TestMoreRingsLessLoss(t *testing.T) {
	// Figure 6 top: loss at one cut drops roughly as 1/rings (paper:
	// 20% at 1 ring, 6% at 4 rings).
	rng := rand.New(rand.NewSource(5))
	var losses []float64
	for rings := 1; rings <= 4; rings++ {
		p := plan33(t, rings)
		res, err := Simulate(p, 1, 2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.AvgBandwidthLoss)
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] >= losses[i-1] {
			t.Errorf("loss did not decrease with more rings: %v", losses)
		}
	}
	if losses[3] > losses[0]/2 {
		t.Errorf("4-ring loss %v not well below 1-ring loss %v", losses[3], losses[0])
	}
}

func TestSimulateErrors(t *testing.T) {
	p := plan33(t, 1)
	rng := rand.New(rand.NewSource(6))
	if _, err := Simulate(p, -1, 10, rng); err == nil {
		t.Error("negative cuts accepted")
	}
	if _, err := Simulate(p, 1, 0, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Simulate(p, 1, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Simulate(p, 100, 10, rng); err == nil {
		t.Error("more cuts than fibers accepted")
	}
	tiny := &wdm.Plan{M: 1}
	if _, err := Simulate(tiny, 1, 10, rng); err == nil {
		t.Error("degenerate plan accepted")
	}
}

func TestSweepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid, err := Sweep(context.Background(), 33, 4, 4, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 4 || len(grid[0]) != 4 {
		t.Fatalf("grid shape %dx%d, want 4x4", len(grid), len(grid[0]))
	}
	// More cuts -> more loss, for every ring count.
	for r := 0; r < 4; r++ {
		for c := 1; c < 4; c++ {
			if grid[r][c].AvgBandwidthLoss <= grid[r][c-1].AvgBandwidthLoss {
				t.Errorf("rings=%d: loss not increasing with cuts: %v then %v",
					r+1, grid[r][c-1].AvgBandwidthLoss, grid[r][c].AvgBandwidthLoss)
			}
		}
	}
	// Partition probability at 2+ cuts falls dramatically from 1 ring
	// to 2 rings.
	if grid[0][1].PartitionProb < 0.9 {
		t.Errorf("1 ring 2 cuts partition = %v, want ~1", grid[0][1].PartitionProb)
	}
	if grid[1][1].PartitionProb > 0.05 {
		t.Errorf("2 rings 2 cuts partition = %v, want ~0", grid[1][1].PartitionProb)
	}
	if _, err := Sweep(context.Background(), 33, 0, 4, 10, rng); err == nil {
		t.Error("invalid sweep accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := plan33(t, 2)
	a, err := Simulate(p, 3, 500, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, 3, 500, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestAvailabilitySteadyState(t *testing.T) {
	// Realistic ops numbers: a fiber segment fails about once a year
	// (8760 h) and takes 8 h to repair -> ~0.09% unavailability.
	params := AvailabilityParams{MTBFHours: 8760, MTTRHours: 8, Trials: 50_000}
	rng := rand.New(rand.NewSource(10))

	single := plan33(t, 1)
	r1, err := Availability(single, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	dual := plan33(t, 2)
	r2, err := Availability(dual, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantUnavail := 8.0 / 8768.0
	if r1.SegmentUnavailability != wantUnavail {
		t.Errorf("segment unavailability = %v, want %v", r1.SegmentUnavailability, wantUnavail)
	}
	// Expected concurrent cuts: segments x unavailability.
	if want := 33 * wantUnavail; r1.MeanConcurrentCuts < want*0.8 || r1.MeanConcurrentCuts > want*1.2 {
		t.Errorf("1-ring mean cuts = %v, want ~%v", r1.MeanConcurrentCuts, want)
	}
	// Two rings double the fiber count but halve per-fiber impact: the
	// bandwidth loss stays comparable, while the partition probability
	// collapses (a single ring partitions whenever >= 2 distinct
	// segments are down).
	if r2.PartitionProb >= r1.PartitionProb && r1.PartitionProb > 0 {
		t.Errorf("2-ring partition %v not below 1-ring %v", r2.PartitionProb, r1.PartitionProb)
	}
	if r2.PartitionProb > 1e-4 {
		t.Errorf("2-ring steady-state partition = %v, want ~0", r2.PartitionProb)
	}
	// Loss scales with segment unavailability (sub-0.1%).
	if r1.MeanBandwidthLoss > 0.01 {
		t.Errorf("1-ring mean loss = %v, want well under 1%%", r1.MeanBandwidthLoss)
	}
}

func TestAvailabilityErrors(t *testing.T) {
	p := plan33(t, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Availability(p, AvailabilityParams{MTBFHours: 0, MTTRHours: 1, Trials: 10}, rng); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := Availability(p, AvailabilityParams{MTBFHours: 1, MTTRHours: 1, Trials: 0}, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Availability(p, AvailabilityParams{MTBFHours: 1, MTTRHours: 1, Trials: 10}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
