GO ?= go

.PHONY: build test vet race verify bench bench-json bench-diff service-smoke scenario-smoke trace-smoke cluster-smoke flagdoc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-bearing packages under the race detector: the event
# engine (the sharded synchronizer's epoch park/wake and stride spin
# barriers — TestEpochBarrierStress hammers them with 1ns windows and
# concurrent Stop — its SPSC rings, and flex-event coalescing), the
# packet-level network simulator (probe and fault-injection hooks,
# cross-shard forwarding, the per-pair lookahead matrix), the routers
# (Reroute mutates live tables; shard clones serve concurrent
# lookups), the traffic harnesses (per-shard delivery fan-in), the
# metrics registry (lock-free instruments scraped while written), the
# job service (worker pool vs HTTP handlers), and the cluster tier
# (dispatchers vs heartbeat monitors vs dynamic registration —
# TestClusterRaceStress keeps the requeue path hot with a permanently
# dead worker).
race:
	$(GO) test -race ./internal/sim/... ./internal/netsim/... ./internal/routing/... ./internal/traffic/... ./internal/metrics/... ./internal/service/... ./internal/cluster/...

# Tier-1 verify recipe (see ROADMAP.md): build + vet + full tests + race
# pass on the simulator core.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable perf record: run every experiment at reduced
# parameters (a smoke-scale pass, minutes not hours) and write
# per-experiment wall time and simulator events/sec to
# BENCH_quartz.json. CI uploads it as an artifact; commit it when the
# perf trajectory is worth recording.
bench-json:
	$(GO) run ./cmd/quartzbench -trials 500 -tasks 4 -rpcs 200 -json BENCH_quartz.json

# Perf gate: run a fresh smoke-scale report and fail if any experiment's
# events/sec regressed >25% versus the committed BENCH_quartz.json.
bench-diff:
	$(GO) run ./cmd/quartzbench -trials 500 -tasks 4 -rpcs 200 -json /tmp/bench-new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old BENCH_quartz.json -new /tmp/bench-new.json

# End-to-end check of the quartzd job service: submit, poll, fetch,
# cache hit on resubmit (envelope and raw-scenario forms), graceful
# SIGTERM drain. CI runs this as the service-smoke job.
service-smoke:
	bash scripts/service_smoke.sh

# Validate every shipped scenario document (examples/scenarios/) with
# quartzsim -scenario -dry-run. CI runs this as the scenario-smoke step.
scenario-smoke:
	bash scripts/scenario_smoke.sh

# End-to-end check of distributed quartzd: a coordinator and two
# workers on loopback, a table8 sweep fanned out and merged
# byte-identically to a single-process run, SSE progress events, a
# coordinator cache hit on resubmission, clean SIGTERM drains. CI runs
# this as the cluster-smoke step.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# End-to-end check of execution tracing: sharded quartzsim and
# quartzbench traces validate under cmd/tracecheck (schema, per-track
# timestamp order), the -json report carries barrier_profile, and a
# quartzd job round-trips its X-Quartz-Trace header through
# GET /jobs/{id}/trace. CI runs this as the trace-smoke step.
trace-smoke:
	bash scripts/trace_smoke.sh

# Regenerate the quartzsim flag reference embedded in EXPERIMENTS.md
# (print it; paste under "## quartzsim flag reference").
flagdoc:
	$(GO) run ./cmd/quartzsim -flagdoc
