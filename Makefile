GO ?= go

.PHONY: build test vet race verify bench bench-json bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulator's hot packages under the race detector: the event
# engine, the packet-level network simulator (including the probe and
# fault-injection hooks), and the routers (Reroute mutates live tables).
race:
	$(GO) test -race ./internal/sim/... ./internal/netsim/... ./internal/routing/...

# Tier-1 verify recipe (see ROADMAP.md): build + vet + full tests + race
# pass on the simulator core.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable perf record: run every experiment at reduced
# parameters (a smoke-scale pass, minutes not hours) and write
# per-experiment wall time and simulator events/sec to
# BENCH_quartz.json. CI uploads it as an artifact; commit it when the
# perf trajectory is worth recording.
bench-json:
	$(GO) run ./cmd/quartzbench -trials 500 -tasks 4 -rpcs 200 -json BENCH_quartz.json

# Perf gate: run a fresh smoke-scale report and fail if any experiment's
# events/sec regressed >25% versus the committed BENCH_quartz.json.
bench-diff:
	$(GO) run ./cmd/quartzbench -trials 500 -tasks 4 -rpcs 200 -json /tmp/bench-new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old BENCH_quartz.json -new /tmp/bench-new.json
