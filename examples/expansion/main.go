// Expansion: grow a Quartz ring in place, §8-style.
//
// Quartz "does not require an expensive upfront investment; switches
// and WDMs can be added as needed." This example starts with a
// 12-switch ring, grows it to 16 and then 24 switches, and reports the
// operator-facing disruption each time: how many existing transceivers
// keep their wavelength untouched, how many must retune, and how the
// wavelength budget evolves against the 80-channel commodity mux and
// the 160-channel fiber.
//
// Run it with:
//
//	go run ./examples/expansion
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/optics"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

func main() {
	rng := rand.New(rand.NewSource(8))
	plan := wdm.Greedy(12, rng)
	fmt.Printf("initial ring: 12 switches, %d wavelengths (optimum %d)\n\n",
		plan.Channels, wdm.OptimalChannels(12))

	for _, grow := range []int{16, 24} {
		next, stats, err := wdm.ExpandPlan(plan, grow, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats)
		budget, err := optics.PlanRing(grow, optics.DefaultParts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  amplifiers now: %d (one per %d switches)\n", budget.Amplifiers, budget.AmpAfterHops)
		muxes := (next.Channels + wdm.CommodityMuxChannels - 1) / wdm.CommodityMuxChannels
		fmt.Printf("  %d-channel muxes per switch: %d; single-fiber headroom: %d channels\n\n",
			wdm.CommodityMuxChannels, muxes, wdm.MaxChannelsPerFiber-next.Channels)
		plan = next
	}

	// Wavelength plans are computed at design time and shipped with the
	// hardware (§3.1.1); serialize the final plan as the factory would.
	data, err := json.Marshal(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final plan serialized: %d bytes of JSON for %d assignments\n",
		len(data), len(plan.Assignments))
	fmt.Println("first assignments:")
	for _, a := range plan.Assignments[:4] {
		fmt.Printf("  switch %2d <-> switch %2d on %s\n", a.S, a.T,
			optics.ChannelLabel(a.Channel, optics.Spacing50GHz))
	}
}
