// Fault tolerance: how many fiber cuts can a Quartz deployment absorb?
//
// The example reproduces §3.5 (Figure 6): a 33-switch Quartz mesh
// carried on 1..4 physical fiber rings, subjected to random
// simultaneous fiber cuts. It reports the expected fraction of logical
// mesh bandwidth lost and the probability that the surviving mesh
// partitions.
//
// Run it with:
//
//	go run ./examples/faulttolerance [-rings N] [-trials N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"github.com/quartz-dcn/quartz"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

var (
	maxRings = flag.Int("rings", 4, "maximum number of physical fiber rings")
	trials   = flag.Int("trials", 20_000, "Monte-Carlo trials per point")
)

func main() {
	flag.Parse()
	const m = 33
	rng := rand.New(rand.NewSource(6))
	base := quartz.GreedyChannels(m, rng)
	fmt.Printf("Quartz deployment: %d switches, %d wavelength channels\n\n", m, base.Channels)

	fmt.Printf("%6s %8s %22s %22s\n", "rings", "cuts", "avg bandwidth loss", "partition probability")
	for rings := 1; rings <= *maxRings; rings++ {
		per := (base.Channels + rings - 1) / rings
		plan, err := wdm.SplitAcrossRings(base, rings, per)
		if err != nil {
			log.Fatal(err)
		}
		for cuts := 1; cuts <= 4; cuts++ {
			res, err := quartz.SimulateFiberCuts(plan, cuts, *trials, rng)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d %8d %21.1f%% %22.4f\n",
				rings, cuts, 100*res.AvgBandwidthLoss, res.PartitionProb)
		}
		fmt.Println()
	}
	fmt.Println("With a second physical ring, even four simultaneous cuts almost")
	fmt.Println("never partition the mesh (cf. Figure 6: probability ~0.24%).")
}
