// Configurator: should your datacenter use Quartz? (§4.4, Table 8.)
//
// The example prices a deployment at several sizes with the calibrated
// 2014 parts catalog, prints the cost per server of each topology
// option, and shows the Quartz bill of materials for a small DC.
//
// Run it with:
//
//	go run ./examples/configurator
package main

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/cost"
)

func main() {
	c := cost.Default2014
	fmt.Println("cost per server by deployment size (2014 USD):")
	fmt.Printf("%10s %14s %14s %14s %14s %12s\n",
		"servers", "2-tier tree", "quartz ring", "3-tier tree", "quartz edge", "quartz core")
	for _, servers := range []int{500, 1000, 10_000, 100_000} {
		ringCost := "n/a"
		if ring, err := cost.QuartzRing(servers, c); err == nil {
			ringCost = fmt.Sprintf("$%.0f", ring.PerServer())
		}
		fmt.Printf("%10d %13s %14s %13s %14s %12s\n",
			servers,
			fmt.Sprintf("$%.0f", cost.TwoTierTree(servers, c).PerServer()),
			ringCost,
			fmt.Sprintf("$%.0f", cost.ThreeTierTree(servers, c).PerServer()),
			fmt.Sprintf("$%.0f", cost.QuartzEdge(servers, c).PerServer()),
			fmt.Sprintf("$%.0f", cost.QuartzCore(servers, c).PerServer()),
		)
	}

	fmt.Println("\nbill of materials, single Quartz ring for 500 servers:")
	ring, err := cost.QuartzRing(500, c)
	if err != nil {
		panic(err)
	}
	fmt.Print(ring)
	fmt.Println("\nA single ring serves up to 1120 servers (35 switches x 32); larger")
	fmt.Println("datacenters deploy Quartz as an edge or core design element (§4).")
}
