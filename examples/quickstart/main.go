// Quickstart: plan a Quartz ring and push a few packets through it.
//
// This example walks the whole public surface in ~60 lines: plan the
// paper's flagship 1056-port ring (33 switches x 32 servers), inspect
// its wavelength and amplifier plan, then simulate a quick RPC across
// the mesh and print the observed latency.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/quartz-dcn/quartz"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

func main() {
	// 1. Plan the ring: channel assignment, fiber split, amplifiers.
	ring, err := quartz.NewRing(quartz.RingConfig{Switches: 33, HostsPerSwitch: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ring)
	fmt.Printf("wavelengths: %d used (proven minimum %d); max on any fiber link: %d\n",
		ring.Channels(), quartz.OptimalChannels(33), ring.Plan.MaxLinkLoad())
	fmt.Printf("wiring: %d fiber cables total — two per switch per physical ring\n",
		ring.WiringComplexity())

	// 2. Simulate an RPC between two servers in different racks. ECMP
	// on the mesh always picks the single-hop direct path (§3.4).
	g := ring.Graph
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:     g,
		Router:    routing.NewECMP(g),
		OnDeliver: h.Deliver,
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := g.Hosts()
	rpc := &traffic.RPC{
		Net: net, Harness: h,
		Client: hosts[0], Server: hosts[len(hosts)-1],
		Count: 1000, ReqTag: 1, ReplyTag: 2,
	}
	if err := rpc.Start(); err != nil {
		log.Fatal(err)
	}
	net.Engine().Run()

	fmt.Printf("RPCs: %d completed, mean round trip %.2f us (two 380 ns switch hops each way)\n",
		rpc.RTT.N(), rpc.RTT.Mean())
}
