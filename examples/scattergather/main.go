// Scatter/gather: compare an MPI-style workload on the paper's
// simulated architectures.
//
// The example reproduces the spirit of Figure 17: concurrent
// scatter/gather tasks with randomly placed endpoints, run on the
// three-tier tree baseline and on Quartz in edge and core, printing the
// mean per-packet latency as tasks are added.
//
// Run it with:
//
//	go run ./examples/scattergather
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/quartz-dcn/quartz"
	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// run measures mean scatter latency with n concurrent tasks.
func run(arch *core.Architecture, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := arch.Graph.Hosts()
	const end = 10 * sim.Millisecond
	for task := 0; task < n; task++ {
		perm := rng.Perm(len(hosts))
		sender := hosts[perm[0]]
		var receivers []topology.NodeID
		for _, i := range perm[1:13] {
			receivers = append(receivers, hosts[i])
		}
		t := traffic.Scatter(net, sender, receivers, 20e3, task+1, nil, rng)
		if err := t.Start(end); err != nil {
			log.Fatal(err)
		}
	}
	net.Engine().RunUntil(end + sim.Millisecond)
	sum, count := 0.0, 0
	for task := 0; task < n; task++ {
		if s := h.Latency(task + 1); s.N() > 0 {
			sum += s.Mean()
			count++
		}
	}
	return sum / float64(count)
}

func main() {
	tree, err := quartz.ThreeTierTree(quartz.ArchParams{})
	if err != nil {
		log.Fatal(err)
	}
	qec, err := quartz.QuartzInEdgeAndCore(quartz.ArchParams{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mean scatter latency per packet (us):")
	fmt.Printf("%6s %18s %26s %10s\n", "tasks", "three-tier tree", "quartz in edge and core", "reduction")
	for n := 1; n <= 8; n++ {
		t := run(tree, n, int64(100+n))
		q := run(qec, n, int64(100+n))
		fmt.Printf("%6d %18.2f %26.2f %9.0f%%\n", n, t, q, 100*(1-q/t))
	}
	fmt.Println("\nThe tree's store-and-forward core dominates and congests; the")
	fmt.Println("all-cut-through Quartz design stays flat (cf. Figure 17).")
}
