// Cross-traffic: the paper's prototype experiment (§6.1, Figure 14).
//
// A latency-sensitive RPC runs between two racks while bursty bulk
// traffic from three other servers aims at the same destination rack.
// On a two-tier tree the shared aggregation uplink congests and the RPC
// slows down; on the Quartz mesh the direct per-pair channels keep the
// RPC almost unaffected.
//
// Run it with:
//
//	go run ./examples/crosstraffic
package main

import (
	"fmt"
	"log"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/sim"
)

func main() {
	rows, err := experiments.Figure14Sweep(7, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normalized RPC round-trip latency vs per-source cross-traffic:")
	fmt.Printf("%14s %16s %12s\n", "cross (Mb/s)", "two-tier tree", "quartz")
	for _, r := range rows {
		fmt.Printf("%14d %16.3f %12.3f\n",
			int64(r.CrossTraffic/sim.Mbps), r.TwoTierTree, r.Quartz)
	}
	last := rows[len(rows)-1]
	fmt.Printf("\nAt 200 Mb/s per source the tree RPC slowed by %.0f%%; Quartz moved %.0f%%.\n",
		100*(last.TwoTierTree-1), 100*(last.Quartz-1))
	fmt.Println("(cf. Figure 14: the tree rises steeply; Quartz stays flat.)")
}
