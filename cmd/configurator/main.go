// Command configurator prices Quartz and baseline deployments (§4.4 of
// the paper): it prints the bill of materials and cost per server for a
// datacenter of the given size under each topology option.
//
// Usage:
//
//	configurator [-servers N] [-bom]
//
// With -bom, prints the full bill of materials for each option.
package main

import (
	"flag"
	"fmt"

	"github.com/quartz-dcn/quartz/internal/cost"
)

var (
	servers = flag.Int("servers", 10_000, "number of servers")
	bom     = flag.Bool("bom", false, "print full bills of materials")
)

func main() {
	flag.Parse()
	c := cost.Default2014
	type option struct {
		b   *cost.BOM
		err error
	}
	ring, ringErr := cost.QuartzRing(*servers, c)
	options := []option{
		{cost.TwoTierTree(*servers, c), nil},
		{ring, ringErr},
		{cost.ThreeTierTree(*servers, c), nil},
		{cost.QuartzEdge(*servers, c), nil},
		{cost.QuartzCore(*servers, c), nil},
		{cost.QuartzEdgeAndCore(*servers, c), nil},
	}
	fmt.Printf("network options for %d servers (2014 parts catalog):\n\n", *servers)
	for _, o := range options {
		if o.err != nil {
			fmt.Printf("%-26s not applicable: %v\n", "single Quartz ring", o.err)
			continue
		}
		fmt.Printf("%-26s $%10.0f total   $%6.0f/server\n", o.b.Name, o.b.Total(), o.b.PerServer())
	}
	if *bom {
		fmt.Println()
		for _, o := range options {
			if o.err != nil {
				continue
			}
			fmt.Println(o.b)
		}
	}
}
