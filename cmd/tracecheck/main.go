// Command tracecheck validates a Chrome trace-event JSON file — the
// output of quartzsim/quartzbench -trace-spans and GET
// /jobs/{id}/trace — before it reaches Perfetto, where a malformed
// trace fails with an opaque importer error. scripts/trace_smoke.sh
// runs it over every export path.
//
// Usage:
//
//	tracecheck [-min-events N] [-require name,name,...] FILE
//
// Checks, against the trace-event format Perfetto imports:
//
//   - the document is a JSON object with a traceEvents array
//   - every event has name and ph; complete ("X") events also carry
//     ts, dur >= 0, pid, and tid
//   - complete events are start-sorted within each (pid, tid) track,
//     which keeps track rendering stable across viewers
//   - -require names must each appear as at least one X event
//   - at least -min-events X events in total
//
// Exit status 1 with a pointed message on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

var (
	minEvents = flag.Int("min-events", 1, "require at least N complete (X) events")
	require   = flag.String("require", "", "comma-separated span names that must each appear as an X event")
)

// event is the slice of the trace-event schema the checks read. Fields
// are pointers where absence must be distinguishable from zero.
type event struct {
	Name *string  `json:"name"`
	Ph   *string  `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

func die(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		die("usage: tracecheck [-min-events N] [-require names] FILE")
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		die("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		die("%s: not a JSON trace document: %v", path, err)
	}
	if tf.TraceEvents == nil {
		die("%s: no traceEvents array", path)
	}

	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	seen := map[string]bool{}
	complete := 0
	for i, msg := range tf.TraceEvents {
		var e event
		if err := json.Unmarshal(msg, &e); err != nil {
			die("%s: traceEvents[%d]: %v", path, i, err)
		}
		if e.Name == nil || e.Ph == nil {
			die("%s: traceEvents[%d]: missing name or ph", path, i)
		}
		if *e.Ph != "X" {
			continue // metadata and instants carry their own schemas
		}
		complete++
		seen[*e.Name] = true
		switch {
		case e.Ts == nil:
			die("%s: traceEvents[%d] (%s): X event without ts", path, i, *e.Name)
		case e.Dur == nil:
			die("%s: traceEvents[%d] (%s): X event without dur", path, i, *e.Name)
		case *e.Dur < 0:
			die("%s: traceEvents[%d] (%s): negative dur %g", path, i, *e.Name, *e.Dur)
		case e.Pid == nil || e.Tid == nil:
			die("%s: traceEvents[%d] (%s): X event without pid/tid", path, i, *e.Name)
		}
		k := track{*e.Pid, *e.Tid}
		if prev, ok := lastTs[k]; ok && *e.Ts < prev {
			die("%s: traceEvents[%d] (%s): ts %g precedes %g on track pid=%d tid=%d",
				path, i, *e.Name, *e.Ts, prev, k.pid, k.tid)
		}
		lastTs[k] = *e.Ts
	}
	if complete < *minEvents {
		die("%s: %d complete event(s), want at least %d", path, complete, *minEvents)
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if name = strings.TrimSpace(name); name != "" && !seen[name] {
				die("%s: no %q span", path, name)
			}
		}
	}
	fmt.Printf("tracecheck: %s ok (%d complete events, %d tracks)\n", path, complete, len(lastTs))
}
