package main

import (
	"flag"
	"strings"
	"testing"
)

// Every registered flag must be placed in exactly one usage group, so
// -h and -flagdoc can never silently omit a flag.
func TestEveryFlagGrouped(t *testing.T) {
	if missing := ungroupedFlags(); len(missing) > 0 {
		t.Fatalf("flags not in any usage group (add them to flagGroups in usage.go): %v", missing)
	}
	seen := map[string]int{}
	for _, g := range flagGroups {
		for _, name := range g.flags {
			seen[name]++
			if flag.Lookup(name) == nil {
				t.Errorf("group %q lists %q, which is not a registered flag", g.title, name)
			}
		}
	}
	for name, n := range seen {
		if n > 1 {
			t.Errorf("flag %q appears in %d groups", name, n)
		}
	}
}

func TestFlagDocOutput(t *testing.T) {
	var b strings.Builder
	writeFlagDoc(&b)
	out := b.String()
	var total int
	for _, g := range flagGroups {
		if !strings.Contains(out, "### "+g.title) {
			t.Errorf("flagdoc missing section %q", g.title)
		}
		total += len(g.flags)
	}
	// Count rows by line prefix: defaults like -1 also render as
	// "| `-1` |" mid-line, so a plain substring count overcounts.
	var got int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| `-") {
			got++
		}
	}
	if got != total {
		t.Errorf("flagdoc has %d flag rows, want %d", got, total)
	}
}
