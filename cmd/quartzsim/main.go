// Command quartzsim runs ad-hoc packet-level simulations on the
// architectures of the paper: pick a design, a workload, and a load
// level, and get latency statistics and the hottest ports.
//
// Usage:
//
//	quartzsim [-arch NAME] [-workload scatter|gather|scattergather|permutation]
//	          [-tasks N] [-pps N] [-fanout N] [-ms N] [-seed N] [-hot N]
//
// Architectures: tree3 (three-tier), tree2 (two-tier), ring (single
// Quartz ring), core (Quartz in core), edge (Quartz in edge), edgecore
// (Quartz in edge and core), jellyfish, qjellyfish (Quartz rings in a
// Jellyfish graph).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

var (
	archName = flag.String("arch", "edgecore", "architecture: tree3, tree2, ring, core, edge, edgecore, jellyfish, qjellyfish")
	workload = flag.String("workload", "scatter", "workload: scatter, gather, scattergather, permutation, trace")
	trace    = flag.String("trace", "", "CSV trace file to replay (workload=trace): at_us,src,dst,size[,flow[,tag]]")
	failLink = flag.Int("faillink", -1, "fail this link ID at the start of the run")
	tasks    = flag.Int("tasks", 4, "concurrent tasks")
	pps      = flag.Float64("pps", 20e3, "packets per second per stream")
	fanout   = flag.Int("fanout", 12, "receivers (or senders) per task")
	ms       = flag.Int("ms", 10, "measured milliseconds of virtual time")
	seed     = flag.Int64("seed", 1, "random seed")
	hot      = flag.Int("hot", 5, "show the N hottest ports")
)

func buildArch() (*core.Architecture, error) {
	rng := rand.New(rand.NewSource(*seed))
	p := core.ArchParams{}
	switch *archName {
	case "tree3":
		return core.ThreeTierTree(p)
	case "tree2":
		return core.TwoTierTreeArch(p)
	case "ring":
		return core.QuartzRingArch(p)
	case "core":
		return core.QuartzInCore(p)
	case "edge":
		return core.QuartzInEdge(p)
	case "edgecore":
		return core.QuartzInEdgeAndCore(p)
	case "jellyfish":
		return core.Jellyfish(p, rng)
	case "qjellyfish":
		return core.QuartzInJellyfish(p, rng)
	default:
		return nil, fmt.Errorf("unknown architecture %q", *archName)
	}
}

func main() {
	flag.Parse()
	arch, err := buildArch()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		os.Exit(2)
	}
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	hosts := arch.Graph.Hosts()
	end := sim.Time(*ms) * sim.Millisecond

	pick := func(k int) []topology.NodeID {
		perm := rng.Perm(len(hosts))
		out := make([]topology.NodeID, 0, k)
		for _, i := range perm[:k] {
			out = append(out, hosts[i])
		}
		return out
	}

	var tags []int
	startTask := func(tag int) error {
		members := pick(*fanout + 1)
		sender, rest := members[0], members[1:]
		var t *traffic.Task
		switch *workload {
		case "scatter":
			t = traffic.Scatter(net, sender, rest, *pps, tag, arch.VLB, rng)
		case "gather":
			t = traffic.Gather(net, rest, sender, *pps, tag, arch.VLB, rng)
		case "scattergather":
			t = traffic.ScatterGather(net, h, sender, rest, *pps, tag, tag+1, arch.VLB, rng)
		case "trace":
			f, err := os.Open(*trace)
			if err != nil {
				return err
			}
			defer f.Close()
			events, err := traffic.ParseTrace(f)
			if err != nil {
				return err
			}
			n, err := traffic.Replay(net, events)
			if err != nil {
				return err
			}
			fmt.Printf("replaying %d trace events from %s\n", n, *trace)
			tags = append(tags, 1) // ParseTrace defaults tags to 1
			return nil
		case "permutation":
			t = &traffic.Task{}
			pairs := traffic.RandomPermutation(hosts, rng)
			for i, pr := range pairs {
				s := &traffic.Stream{
					Net: net, Src: pr[0], Dst: pr[1],
					Flow: routing.FlowID(1<<20 + i), RatePPS: *pps, Tag: tag,
					Rand: rand.New(rand.NewSource(rng.Int63())),
				}
				t.Add(s)
			}
		default:
			return fmt.Errorf("unknown workload %q", *workload)
		}
		tags = append(tags, tag)
		return t.Start(end)
	}
	if *failLink >= 0 {
		if err := net.FailLink(topology.LinkID(*failLink)); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("link %d failed for the whole run\n", *failLink)
	}
	n := *tasks
	if *workload == "permutation" || *workload == "trace" {
		n = 1
	}
	for i := 0; i < n; i++ {
		if err := startTask(10 * (i + 1)); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
	}
	net.Engine().RunUntil(end + 2*sim.Millisecond)

	fmt.Printf("%s | %s | %d task(s), %d streams each at %.0f pps | %d ms\n",
		arch.Name, *workload, n, *fanout, *pps, *ms)
	fmt.Printf("delivered %d packets, dropped %d\n\n", net.Delivered(), net.Dropped())
	for _, tag := range tags {
		s := h.Latency(tag)
		if s.N() == 0 {
			continue
		}
		fmt.Printf("task %2d: n=%-8d mean %8.2fus ±%.2f  min %.2f  max %.2f\n",
			tag/10, s.N(), s.Mean(), s.CI95(), s.Min(), s.Max())
	}
	if *hot > 0 {
		fmt.Printf("\nhottest ports (by bytes):\n")
		for _, ps := range net.HottestPorts(*hot) {
			from := arch.Graph.Node(ps.From)
			l := arch.Graph.Link(ps.Link)
			to := arch.Graph.Node(l.Other(ps.From))
			fmt.Printf("  %-10s -> %-10s  %8d pkts %10d B  util %5.1f%%  drops %d\n",
				from.Name, to.Name, ps.Packets, ps.Bytes,
				100*ps.Utilization(net.Engine().Now()), ps.Drops)
		}
	}
}
