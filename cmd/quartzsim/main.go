// Command quartzsim runs ad-hoc packet-level simulations on the
// architectures of the paper: pick a design, a workload, and a load
// level, and get latency statistics, the hottest ports, and — on
// request — per-packet traces and periodic queue-depth samples.
//
// Usage:
//
//	quartzsim [-arch NAME] [-workload scatter|gather|scattergather|permutation|replay]
//	          [-replay FILE] [-tasks N] [-pps N] [-fanout N] [-ms N] [-seed N] [-hot N]
//	          [-fail SPEC] [-fail-detect DUR] [-fail-policy drop|detour]
//	          [-trace FILE] [-trace-max N] [-trace-spans FILE] [-flight-recorder]
//	          [-probe-interval US] [-probe-out FILE]
//	          [-metrics-addr HOST:PORT] [-metrics-out FILE]
//	          [-metrics-interval US] [-flows-out FILE]
//	quartzsim -scenario FILE [-dry-run]
//
// The second form runs a declarative scenario document (JSON or TOML;
// the format reference is SCENARIOS.md) through internal/scenario:
// -dry-run stops after validation and prints the compiled plan —
// experiment identity, parameters, and the result-cache key quartzd
// would use. The full flag reference is generated from one source of
// truth; -flagdoc prints it as Markdown (run `quartzsim -h` for the
// grouped terminal form).
//
// Architectures: tree3 (three-tier), tree2 (two-tier), ring (single
// Quartz ring), core (Quartz in core), edge (Quartz in edge), edgecore
// (Quartz in edge and core), jellyfish, qjellyfish (Quartz rings in a
// Jellyfish graph).
//
// Fault injection: -fail schedules failures at virtual times mid-run.
// SPEC is semicolon-separated clauses of the form
// kind:target@time[,repair@time], where kind:target is one of
// link:<id>, switch:<name-or-id>, or fiber:<fiber>.<segment> (fiber
// cuts need -arch ring), and times are Go durations from the start of
// the run. Example:
//
//	-fail 'link:3@2ms,repair@10ms;fiber:0.1@5ms'
//
// Routes reconverge -fail-detect after each transition; -fail-policy
// picks whether packets queued on a cut link are dropped or detoured.
//
// Observability: -trace records every packet's lifecycle
// (enqueue/transmit/deliver/drop) to FILE; -probe-interval samples every
// directed link's queue depth and utilization each US microseconds of
// virtual time, written to -probe-out. Both emit CSV, or JSON when the
// file name ends in .json. -trace-spans records execution spans — one
// Perfetto track per shard showing barrier windows and wait time, plus
// one track per flow — as Chrome trace-event JSON; -flight-recorder
// bounds it to the most recent spans so a long run keeps a black box
// instead of an unbounded log. A run-telemetry summary (events processed,
// peak calendar size, wall-clock event rate) always prints at the end.
// SIGINT/SIGTERM stop the event loop cleanly: the run ends at the
// current virtual time and every requested output is still written,
// covering the simulated portion.
//
// Metrics: -metrics-addr serves a live HTTP endpoint while the run
// executes — /metrics is the Prometheus text format, /status (and /) a
// JSON run-status page — so a multi-minute simulation can be watched
// mid-flight. -metrics-out streams NDJSON registry snapshots (one line
// per series per heartbeat) to a file; -metrics-interval sets the
// heartbeat cadence in virtual microseconds. -flows-out writes the
// per-flow table (FCT, bytes, retransmits, drop attribution) at the
// end of the run, as CSV or JSON by extension. Any of these flags
// enables the metrics registry, the engine heartbeat, and the
// FlowTracker probe.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/scenario"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/trace"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// flightRecorderSpans bounds the -flight-recorder ring: enough for the
// last few thousand barrier windows of a long run.
const flightRecorderSpans = 4096

var (
	scenarioPath = flag.String("scenario", "", "run a declarative scenario file (JSON or TOML, see SCENARIOS.md) instead of flag-driven setup")
	dryRun       = flag.Bool("dry-run", false, "with -scenario: parse, validate, and print the compiled plan without running")

	archName   = flag.String("arch", "edgecore", "architecture: tree3, tree2, ring, core, edge, edgecore, jellyfish, qjellyfish")
	workload   = flag.String("workload", "scatter", "workload: scatter, gather, scattergather, permutation, replay")
	replay     = flag.String("replay", "", "CSV trace file to replay (workload=replay): at_us,src,dst,size[,flow[,tag]]")
	failLink   = flag.Int("faillink", -1, "fail this link ID at the start of the run (deprecated; see -fail)")
	failSpec   = flag.String("fail", "", "fault schedule: 'kind:target@time[,repair@time];...' e.g. 'link:3@2ms,repair@10ms'")
	failDetect = flag.Duration("fail-detect", time.Millisecond, "detection delay before routes reconverge around a fault")
	failPolicy = flag.String("fail-policy", "drop", "in-flight packets on a cut link: drop or detour")
	tasks      = flag.Int("tasks", 4, "concurrent tasks")
	pps        = flag.Float64("pps", 20e3, "packets per second per stream")
	fanout     = flag.Int("fanout", 12, "receivers (or senders) per task")
	ms         = flag.Int("ms", 10, "measured milliseconds of virtual time")
	seed       = flag.Int64("seed", 1, "random seed")
	shards     = flag.Int("shards", 0, "run on N parallel topology shards (0 = single engine); results are identical for every value")
	hot        = flag.Int("hot", 5, "show the N hottest ports")

	traceOut   = flag.String("trace", "", "record per-packet lifecycle events to this file (CSV, or JSON if it ends in .json)")
	traceMax   = flag.Int("trace-max", 100_000, "keep at most N trace events (0 = unbounded)")
	spansOut   = flag.String("trace-spans", "", "record execution spans (sharded-engine barrier windows, flow lifetimes) and write Chrome trace-event JSON to this file (open in Perfetto)")
	flightRec  = flag.Bool("flight-recorder", false, "bound the span recorder to the most recent spans (with -trace-spans): a black box for long runs")
	probeUS    = flag.Int64("probe-interval", 0, "sample queue depth/utilization every N microseconds (0 = off)")
	coalesceUS = flag.Int64("coalesce-us", 0, "let periodic ticks (probe samples, metrics heartbeats) run up to N microseconds late; on a sharded run ticks coalesce into fewer all-shards-parked phases, tick times stay deterministic (0 = exact tick times)")
	probeOut   = flag.String("probe-out", "", "write queue samples to this file (CSV, or JSON if it ends in .json); default: per-port summary on stdout")
	telemetry  = flag.Bool("telemetry", true, "print the run-telemetry summary")

	metricsAddr = flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (/metrics Prometheus text, /status JSON)")
	metricsOut  = flag.String("metrics-out", "", "stream NDJSON registry snapshots to this file, one per heartbeat")
	metricsUS   = flag.Int64("metrics-interval", 100, "heartbeat/snapshot cadence in virtual microseconds")
	flowsOut    = flag.String("flows-out", "", "write the per-flow telemetry table to this file (CSV, or JSON if it ends in .json)")
)

// emit writes obs to path, picking JSON when the extension says so.
func emit(path string, writeCSV, writeJSON func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return writeJSON(f)
	}
	return writeCSV(f)
}

// parseSimTime converts a Go duration string to virtual time.
func parseSimTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative time %v", d)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}

// findSwitch resolves a -fail switch target: a switch name or a numeric
// node ID.
func findSwitch(g *topology.Graph, target string) (topology.NodeID, error) {
	for _, s := range g.Switches() {
		if g.Node(s).Name == target {
			return s, nil
		}
	}
	if id, err := strconv.Atoi(target); err == nil && id >= 0 && id < g.NumNodes() {
		if g.Node(topology.NodeID(id)).Kind == topology.Switch {
			return topology.NodeID(id), nil
		}
	}
	return 0, fmt.Errorf("no switch %q", target)
}

// parseFailSpec parses the -fail grammar: semicolon-separated clauses
// of kind:target@time[,repair@time].
func parseFailSpec(spec string, g *topology.Graph) ([]netsim.FaultEvent, error) {
	var events []netsim.FaultEvent
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		main, repairPart, hasRepair := strings.Cut(clause, ",")
		kindTarget, atStr, ok := strings.Cut(main, "@")
		if !ok {
			return nil, fmt.Errorf("clause %q: missing @time", clause)
		}
		var ev netsim.FaultEvent
		var err error
		if ev.At, err = parseSimTime(atStr); err != nil {
			return nil, fmt.Errorf("clause %q: bad time: %v", clause, err)
		}
		if hasRepair {
			rs, ok := strings.CutPrefix(strings.TrimSpace(repairPart), "repair@")
			if !ok {
				return nil, fmt.Errorf("clause %q: expected repair@time after the comma", clause)
			}
			if ev.RepairAt, err = parseSimTime(rs); err != nil {
				return nil, fmt.Errorf("clause %q: bad repair time: %v", clause, err)
			}
		}
		kind, target, ok := strings.Cut(strings.TrimSpace(kindTarget), ":")
		if !ok {
			return nil, fmt.Errorf("clause %q: expected kind:target", clause)
		}
		switch kind {
		case "link":
			id, err := strconv.Atoi(target)
			if err != nil {
				return nil, fmt.Errorf("clause %q: bad link ID %q", clause, target)
			}
			ev.Kind = netsim.FaultLink
			ev.Link = topology.LinkID(id)
		case "switch":
			ev.Kind = netsim.FaultSwitch
			if ev.Switch, err = findSwitch(g, target); err != nil {
				return nil, fmt.Errorf("clause %q: %v", clause, err)
			}
		case "fiber":
			fs, ss, ok := strings.Cut(target, ".")
			if !ok {
				return nil, fmt.Errorf("clause %q: fiber target must be <fiber>.<segment>", clause)
			}
			if ev.Fiber, err = strconv.Atoi(fs); err != nil {
				return nil, fmt.Errorf("clause %q: bad fiber %q", clause, fs)
			}
			if ev.Segment, err = strconv.Atoi(ss); err != nil {
				return nil, fmt.Errorf("clause %q: bad segment %q", clause, ss)
			}
			ev.Kind = netsim.FaultFiber
		default:
			return nil, fmt.Errorf("clause %q: unknown fault kind %q (link, switch, fiber)", clause, kind)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("-fail %q: no clauses", spec)
	}
	return events, nil
}

func buildArch() (*core.Architecture, error) {
	rng := rand.New(rand.NewSource(*seed))
	p := core.ArchParams{}
	switch *archName {
	case "tree3":
		return core.ThreeTierTree(p)
	case "tree2":
		return core.TwoTierTreeArch(p)
	case "ring":
		return core.QuartzRingArch(p)
	case "core":
		return core.QuartzInCore(p)
	case "edge":
		return core.QuartzInEdge(p)
	case "edgecore":
		return core.QuartzInEdgeAndCore(p)
	case "jellyfish":
		return core.Jellyfish(p, rng)
	case "qjellyfish":
		return core.QuartzInJellyfish(p, rng)
	default:
		return nil, fmt.Errorf("unknown architecture %q", *archName)
	}
}

// runScenario is the -scenario path: load, compile, and either print
// the plan (-dry-run) or execute the compiled experiment.
func runScenario(path string, dry bool) int {
	f, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		return 2
	}
	c, err := scenario.Compile(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		return 2
	}
	params := c.Params.WithDefaults()
	if dry {
		fmt.Printf("scenario:   %s (%s)\n", c.Doc.Name, path)
		fmt.Printf("title:      %s\n", c.Experiment.Title)
		fmt.Printf("experiment: %s\n", c.Experiment.Name)
		fmt.Printf("params:     seed=%d trials=%d tasks=%d rpcs=%d\n",
			params.Seed, params.Trials, params.Tasks, params.RPCs)
		fmt.Printf("cache key:  %s\n", c.CacheKey())
		fmt.Println("dry run: valid; not executing")
		return 0
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	out, err := c.Experiment.Run(ctx, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		return 1
	}
	fmt.Print(out.Text)
	return 0
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if *flagDoc {
		writeFlagDoc(os.Stdout)
		return
	}
	if *scenarioPath != "" {
		os.Exit(runScenario(*scenarioPath, *dryRun))
	}
	if *dryRun {
		fmt.Fprintln(os.Stderr, "quartzsim: -dry-run needs -scenario FILE")
		os.Exit(2)
	}
	arch, err := buildArch()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		os.Exit(2)
	}
	// Sharded runs deliver on K goroutines: the sharded harness takes
	// them per shard and merges statistics on read. Size it by the
	// request — the partitioner may clamp the shard count downward, and
	// unused sub-harnesses merge as zeros.
	var h *traffic.Harness
	var shh *traffic.ShardedHarness
	cfg := netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
	}
	if *shards >= 1 {
		shh = traffic.NewShardedHarness(*shards)
		cfg.Shards = *shards
		cfg.OnDeliverSharded = shh.Deliver
	} else {
		h = traffic.NewHarness()
		cfg.OnDeliver = h.Deliver
	}
	net, err := netsim.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
		os.Exit(1)
	}
	latency := func(tag int) *metrics.Stats {
		if shh != nil {
			return shh.Latency(tag)
		}
		return h.Latency(tag)
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	hosts := arch.Graph.Hosts()
	end := sim.Time(*ms) * sim.Millisecond

	runEnd := end + 2*sim.Millisecond

	// All observability attaches through Network.Observe: it builds the
	// per-shard probe chains (a single set on a legacy network) and the
	// Observer merges their output after the run.
	oo := netsim.ObserveOptions{}
	if *traceOut != "" {
		oo.Trace, oo.TraceLimit = true, *traceMax
	}
	var spans *trace.Recorder
	if *spansOut != "" {
		if *flightRec {
			spans = trace.NewFlightRecorder(flightRecorderSpans)
		} else {
			spans = trace.NewRecorder()
		}
		oo.Spans = spans
		oo.Flows = true // flow spans render from the merged flow table
	}
	var reg *metrics.Registry
	if *metricsAddr != "" || *metricsOut != "" || *flowsOut != "" {
		if *metricsUS <= 0 {
			fmt.Fprintln(os.Stderr, "quartzsim: -metrics-interval must be positive")
			os.Exit(2)
		}
		reg = metrics.NewRegistry()
		oo.Flows = true
		oo.Registry = reg
		oo.HeartbeatEvery = sim.Time(*metricsUS) * sim.Microsecond
	}
	if *probeUS > 0 {
		oo.SampleEvery = sim.Time(*probeUS) * sim.Microsecond
	} else if *probeOut != "" {
		fmt.Fprintln(os.Stderr, "quartzsim: -probe-out has no effect without -probe-interval")
	}
	if oo.SampleEvery > 0 || oo.HeartbeatEvery > 0 {
		oo.Until = runEnd
	}
	if *coalesceUS < 0 {
		fmt.Fprintln(os.Stderr, "quartzsim: -coalesce-us must be non-negative")
		os.Exit(2)
	}
	oo.CoalesceTolerance = sim.Time(*coalesceUS) * sim.Microsecond
	obs := net.Observe(oo)
	sampler := obs.Sampler()

	var exporter *metrics.NDJSONExporter
	var metricsFile *os.File
	if reg != nil {
		if *metricsOut != "" {
			metricsFile, err = os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
				os.Exit(1)
			}
			exporter = metrics.NewNDJSONExporter(metricsFile)
			// Export on shard 0's heartbeat only: one writer, and every
			// other shard's instruments read atomically in the snapshot.
			obs.Heartbeats()[0].OnTick = func(at sim.Time) {
				if err := exporter.Export(int64(at), reg.Snapshot()); err != nil {
					fmt.Fprintf(os.Stderr, "quartzsim: writing metrics: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *metricsAddr != "" {
			errc := make(chan error, 1)
			metrics.Serve(*metricsAddr, reg, metrics.StatusMeta{
				"arch":     *archName,
				"workload": *workload,
				"tasks":    strconv.Itoa(*tasks),
				"ms":       strconv.Itoa(*ms),
				"seed":     strconv.FormatInt(*seed, 10),
				"shards":   strconv.Itoa(net.NumShards()),
			}, errc)
			go func() {
				if err := <-errc; err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "quartzsim: metrics server: %v\n", err)
				}
			}()
			fmt.Printf("serving live metrics on http://%s/metrics (status: /status)\n", *metricsAddr)
		}
	}

	pick := func(k int) []topology.NodeID {
		perm := rng.Perm(len(hosts))
		out := make([]topology.NodeID, 0, k)
		for _, i := range perm[:k] {
			out = append(out, hosts[i])
		}
		return out
	}

	var tags []int
	startTask := func(tag int) error {
		members := pick(*fanout + 1)
		sender, rest := members[0], members[1:]
		var t *traffic.Task
		switch *workload {
		case "scatter":
			t = traffic.Scatter(net, sender, rest, *pps, tag, arch.VLB, rng)
		case "gather":
			t = traffic.Gather(net, rest, sender, *pps, tag, arch.VLB, rng)
		case "scattergather":
			if shh != nil {
				t = traffic.ShardedScatterGather(net, shh, sender, rest, *pps, tag, tag+1, arch.VLB, rng)
			} else {
				t = traffic.ScatterGather(net, h, sender, rest, *pps, tag, tag+1, arch.VLB, rng)
			}
		case "replay":
			if *replay == "" {
				return fmt.Errorf("-workload replay requires -replay FILE")
			}
			f, err := os.Open(*replay)
			if err != nil {
				return err
			}
			defer f.Close()
			events, err := traffic.ParseTrace(f)
			if err != nil {
				return err
			}
			n, err := traffic.Replay(net, events)
			if err != nil {
				return err
			}
			fmt.Printf("replaying %d trace events from %s\n", n, *replay)
			tags = append(tags, 1) // ParseTrace defaults tags to 1
			return nil
		case "permutation":
			t = &traffic.Task{}
			pairs := traffic.RandomPermutation(hosts, rng)
			for i, pr := range pairs {
				s := &traffic.Stream{
					Net: net, Src: pr[0], Dst: pr[1],
					Flow: routing.FlowID(1<<20 + i), RatePPS: *pps, Tag: tag,
					Rand: rand.New(rand.NewSource(rng.Int63())),
				}
				t.Add(s)
			}
		default:
			return fmt.Errorf("unknown workload %q", *workload)
		}
		tags = append(tags, tag)
		return t.Start(end)
	}
	if *failLink >= 0 {
		if err := net.FailLink(topology.LinkID(*failLink)); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("link %d failed for the whole run\n", *failLink)
	}
	if *failSpec != "" {
		events, err := parseFailSpec(*failSpec, arch.Graph)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(2)
		}
		var policy netsim.ReroutePolicy
		switch *failPolicy {
		case "drop":
			policy = netsim.DropInFlight
		case "detour":
			policy = netsim.DetourInFlight
		default:
			fmt.Fprintf(os.Stderr, "quartzsim: unknown -fail-policy %q (drop or detour)\n", *failPolicy)
			os.Exit(2)
		}
		fi := net.Faults()
		if arch.Ring != nil {
			if _, err := arch.Ring.AttachFaults(net); err != nil {
				fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
				os.Exit(1)
			}
		}
		fi.OnChange = func(c netsim.FaultChange) {
			if c.Reconverged {
				fmt.Printf("[%v] routes reconverged (%d links down)\n", c.At, c.DeadLinks)
				return
			}
			verb := "fail"
			if c.Repair {
				verb = "repair"
			}
			fmt.Printf("[%v] %s: %s (%d links, %d down)\n", c.At, verb, c.Event, len(c.Links), c.DeadLinks)
		}
		detect := sim.Time(failDetect.Nanoseconds()) * sim.Nanosecond
		if err := fi.Apply(netsim.FaultSchedule{
			Events:         events,
			DetectionDelay: detect,
			Policy:         policy,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fault schedule: %d event(s), detection %v, policy %s\n", len(events), detect, *failPolicy)
	}
	n := *tasks
	if *workload == "permutation" || *workload == "replay" {
		n = 1
	}
	for i := 0; i < n; i++ {
		if err := startTask(10 * (i + 1)); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
	}
	// SIGINT/SIGTERM stop the event loop at the next watchdog tick
	// instead of killing the process: the partial run still flows into
	// every requested output (trace, samples, flows, metrics), so a
	// long simulation interrupted mid-write stays usable.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	sched := net.Scheduler()
	const watchdogEvery = 100 * sim.Microsecond
	var interruptedAt sim.Time
	var watchdog func()
	watchdog = func() {
		if ctx.Err() != nil {
			interruptedAt = sched.Now()
			sched.Stop()
			return
		}
		sched.After(watchdogEvery, watchdog)
	}
	sched.After(watchdogEvery, watchdog)

	net.RunUntil(runEnd)
	if interruptedAt > 0 {
		stopSignals() // a second signal now kills immediately
		fmt.Fprintf(os.Stderr,
			"quartzsim: interrupted at virtual time %v; writing partial outputs\n", interruptedAt)
	}

	fmt.Printf("%s | %s | %d task(s), %d streams each at %.0f pps | %d ms",
		arch.Name, *workload, n, *fanout, *pps, *ms)
	if *shards >= 1 {
		fmt.Printf(" | %d shard(s)", net.NumShards())
	}
	fmt.Println()
	fmt.Printf("delivered %d packets, dropped %d\n\n", net.Delivered(), net.Dropped())
	for _, tag := range tags {
		s := latency(tag)
		if s.N() == 0 {
			continue
		}
		fmt.Printf("task %2d: n=%-8d mean %8.2fus ±%.2f  min %.2f  max %.2f\n",
			tag/10, s.N(), s.Mean(), s.CI95(), s.Min(), s.Max())
	}
	if *hot > 0 {
		fmt.Printf("\nhottest ports (by bytes):\n")
		for _, ps := range net.HottestPorts(*hot) {
			from := arch.Graph.Node(ps.From)
			l := arch.Graph.Link(ps.Link)
			to := arch.Graph.Node(l.Other(ps.From))
			fmt.Printf("  %-10s -> %-10s  %8d pkts %10d B  util %5.1f%%  drops %d\n",
				from.Name, to.Name, ps.Packets, ps.Bytes,
				100*ps.Utilization(sched.Now()), ps.Drops)
		}
	}

	if *traceOut != "" {
		recorder := obs.Trace()
		if err := emit(*traceOut, recorder.WriteCSV, recorder.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s", len(recorder.Events()), *traceOut)
		if tr := recorder.Truncated(); tr > 0 {
			fmt.Printf(" (%d more dropped by -trace-max %d)", tr, *traceMax)
			fmt.Fprintf(os.Stderr,
				"quartzsim: warning: trace is INCOMPLETE: %d event(s) discarded by -trace-max %d; raise it or pass -trace-max 0\n",
				tr, *traceMax)
		}
		fmt.Println()
	}
	if sampler != nil {
		if *probeOut != "" {
			if err := emit(*probeOut, sampler.WriteCSV, sampler.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "quartzsim: writing samples: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d queue samples to %s\n", len(sampler.Samples()), *probeOut)
		} else {
			// No output file: summarize the deepest queues inline.
			fmt.Printf("\nqueue depth by port (sampled every %d us; deepest %d):\n", *probeUS, *hot)
			type portPeak struct {
				ref  netsim.PortRef
				peak int
			}
			peaks := make([]portPeak, 0, arch.Graph.NumLinks()*2)
			for i := 0; i < arch.Graph.NumLinks(); i++ {
				l := arch.Graph.Link(topology.LinkID(i))
				for _, from := range []topology.NodeID{l.A, l.B} {
					ref := netsim.PortRef{Link: l.ID, From: from}
					peaks = append(peaks, portPeak{ref, sampler.PeakDepth(ref)})
				}
			}
			for i := 0; i < len(peaks); i++ { // selection sort: tiny n
				max := i
				for j := i + 1; j < len(peaks); j++ {
					if peaks[j].peak > peaks[max].peak {
						max = j
					}
				}
				peaks[i], peaks[max] = peaks[max], peaks[i]
			}
			shown := *hot
			if shown > len(peaks) {
				shown = len(peaks)
			}
			for _, pp := range peaks[:shown] {
				st := sampler.DepthStats(pp.ref)
				from := arch.Graph.Node(pp.ref.From)
				to := arch.Graph.Node(arch.Graph.Link(pp.ref.Link).Other(pp.ref.From))
				fmt.Printf("  %-10s -> %-10s  peak %7d B  mean %9.1f B over %d samples\n",
					from.Name, to.Name, pp.peak, st.Mean(), st.N())
			}
		}
	}
	if reg != nil {
		flows := obs.Flows()
		fct := metrics.NewLatencyHistogram()
		n := flows.FCTStats(fct)
		if n > 0 {
			fmt.Printf("\nflows: %d tracked | FCT p50 %.1fus p99 %.1fus max %.1fus\n",
				n, fct.Quantile(0.50), fct.Quantile(0.99), fct.Max())
		}
		if *flowsOut != "" {
			if err := emit(*flowsOut, flows.WriteCSV, flows.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "quartzsim: writing flows: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d flow rows to %s\n", flows.NumFlows(), *flowsOut)
		}
	}
	if exporter != nil {
		// Final snapshot so the stream always ends with end-of-run state.
		if err := exporter.Export(int64(sched.Now()), reg.Snapshot()); err == nil {
			err = metricsFile.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics snapshots to %s\n", exporter.Snapshots(), *metricsOut)
	}
	if spans != nil {
		nflows := obs.FlowSpans()
		f, err := os.Create(*spansOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: %v\n", err)
			os.Exit(1)
		}
		err = spans.WriteChrome(f, map[string]string{
			"tool":     "quartzsim",
			"arch":     *archName,
			"workload": *workload,
			"shards":   strconv.Itoa(net.NumShards()),
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzsim: writing spans: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d execution spans (%d flow tracks) to %s\n", spans.Len(), nflows, *spansOut)
	}
	if *telemetry {
		fmt.Printf("\ntelemetry: %s\n", net.Telemetry())
	}
}
