// Command benchdiff compares two quartzbench -json run reports and
// fails when any experiment's simulator throughput (events/sec)
// regressed beyond a threshold. `make bench-diff` runs a fresh
// smoke-scale report and diffs it against the committed
// BENCH_quartz.json, which is how CI catches hot-path regressions
// before they land.
//
// Usage:
//
//	benchdiff -old BENCH_quartz.json -new /tmp/bench.json [-threshold 25]
//
// Experiments that drive no simulator events (analytic tables) are
// skipped; an experiment present in the old report but missing from the
// new one is an error. Exit status 1 signals a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

var (
	oldPath   = flag.String("old", "BENCH_quartz.json", "baseline run report")
	newPath   = flag.String("new", "", "candidate run report")
	threshold = flag.Float64("threshold", 25, "allowed events/sec regression, percent")
)

func readReport(path string) (*experiments.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r experiments.Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	byName := make(map[string]experiments.ExperimentReport, len(newRep.Experiments))
	for _, e := range newRep.Experiments {
		byName[e.Name] = e
	}

	fmt.Printf("%-10s %14s %14s %8s\n", "experiment", "old ev/s", "new ev/s", "delta")
	regressed := false
	for _, oldE := range oldRep.Experiments {
		if oldE.Events == 0 || oldE.EventsPerSec <= 0 {
			continue // analytic experiment: no event-loop throughput
		}
		newE, ok := byName[oldE.Name]
		if !ok {
			fmt.Printf("%-10s %14.0f %14s %8s\n", oldE.Name, oldE.EventsPerSec, "missing", "FAIL")
			regressed = true
			continue
		}
		deltaPct := 100 * (newE.EventsPerSec - oldE.EventsPerSec) / oldE.EventsPerSec
		mark := ""
		if deltaPct < -*threshold {
			mark = "  << regression"
			regressed = true
		}
		fmt.Printf("%-10s %14.0f %14.0f %+7.1f%%%s\n",
			oldE.Name, oldE.EventsPerSec, newE.EventsPerSec, deltaPct, mark)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: events/sec regressed more than %.0f%% vs %s\n", *threshold, *oldPath)
		os.Exit(1)
	}
	fmt.Printf("ok: no experiment regressed more than %.0f%%\n", *threshold)
}
