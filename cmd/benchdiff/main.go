// Command benchdiff compares two quartzbench -json run reports and
// fails when any experiment's simulator throughput (events/sec)
// regressed beyond a threshold. `make bench-diff` runs a fresh
// smoke-scale report and diffs it against the committed
// BENCH_quartz.json, which is how CI catches hot-path regressions
// before they land.
//
// Usage:
//
//	benchdiff -old BENCH_quartz.json -new /tmp/bench.json [-threshold 25]
//
// Experiments that drive no simulator events (analytic tables) are
// skipped, and so is an experiment present in only one of the two
// reports — reports from different revisions of the registry stay
// comparable; the skips are listed so a shrinking registry is visible.
// Exit status 1 signals a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

var (
	oldPath   = flag.String("old", "BENCH_quartz.json", "baseline run report")
	newPath   = flag.String("new", "", "candidate run report")
	threshold = flag.Float64("threshold", 25, "allowed events/sec regression, percent")
)

func readReport(path string) (*experiments.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r experiments.Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// cpuLabel renders a report's recorded host parallelism, tolerating
// reports written before the field existed.
func cpuLabel(r *experiments.Report) string {
	if r.NumCPU == 0 {
		return "unrecorded"
	}
	return fmt.Sprintf("%d CPU / GOMAXPROCS %d", r.NumCPU, r.GoMaxProcs)
}

func main() {
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	// Differing host parallelism skews every wall-clock column (a 1-CPU
	// box inverts the sharded speedup table) but does not make the code
	// under test slower — warn, never gate. Reports that predate the
	// num_cpu field carry 0 and are not comparable either way.
	if oldRep.NumCPU != newRep.NumCPU {
		fmt.Fprintf(os.Stderr,
			"benchdiff: warning: CPU counts differ (%s: %s, %s: %s); wall-clock columns are not comparable\n",
			*oldPath, cpuLabel(oldRep), *newPath, cpuLabel(newRep))
	}
	byName := make(map[string]experiments.ExperimentReport, len(newRep.Experiments))
	for _, e := range newRep.Experiments {
		byName[e.Name] = e
	}

	inOld := make(map[string]bool, len(oldRep.Experiments))

	fmt.Printf("%-10s %14s %14s %8s\n", "experiment", "old ev/s", "new ev/s", "delta")
	regressed := false
	var skipped []string
	for _, oldE := range oldRep.Experiments {
		inOld[oldE.Name] = true
		if oldE.Events == 0 || oldE.EventsPerSec <= 0 {
			continue // analytic experiment: no event-loop throughput
		}
		newE, ok := byName[oldE.Name]
		if !ok {
			// Present only in the baseline — a registry that moved on,
			// not a regression in the code under test.
			fmt.Printf("%-10s %14.0f %14s %8s\n", oldE.Name, oldE.EventsPerSec, "-", "skipped")
			skipped = append(skipped, oldE.Name)
			continue
		}
		deltaPct := 100 * (newE.EventsPerSec - oldE.EventsPerSec) / oldE.EventsPerSec
		mark := ""
		if deltaPct < -*threshold {
			mark = "  << regression"
			regressed = true
		}
		fmt.Printf("%-10s %14.0f %14.0f %+7.1f%%%s\n",
			oldE.Name, oldE.EventsPerSec, newE.EventsPerSec, deltaPct, mark)
	}
	// New-only experiments have no baseline to diff against; list them
	// so the skip is deliberate rather than silent.
	var added []string
	for _, newE := range newRep.Experiments {
		if !inOld[newE.Name] && newE.Events > 0 && newE.EventsPerSec > 0 {
			added = append(added, newE.Name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%-10s %14s %14.0f %8s\n", name, "-", byName[name].EventsPerSec, "skipped")
	}
	if len(skipped) > 0 {
		fmt.Printf("skipped %d experiment(s) absent from %s: %s\n",
			len(skipped), *newPath, strings.Join(skipped, ", "))
	}
	if len(added) > 0 {
		fmt.Printf("skipped %d experiment(s) with no baseline in %s: %s\n",
			len(added), *oldPath, strings.Join(added, ", "))
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: events/sec regressed more than %.0f%% vs %s\n", *threshold, *oldPath)
		os.Exit(1)
	}
	fmt.Printf("ok: no experiment regressed more than %.0f%%\n", *threshold)
}
