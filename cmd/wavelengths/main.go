// Command wavelengths plans WDM channel assignments for Quartz rings
// (§3.1 of the paper): it reports the number of wavelengths required by
// the greedy heuristic and the proven optimum, and can dump the full
// per-pair assignment.
//
// Usage:
//
//	wavelengths [-m ringSize] [-sweep max] [-plan] [-map] [-rings N] [-seed N]
//
// With -sweep, prints the Figure 5 table up to the given ring size.
// With -plan, prints every pair's channel, direction, and fiber ring.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

var (
	m       = flag.Int("m", 33, "ring size (number of switches)")
	sweep   = flag.Int("sweep", 0, "sweep ring sizes 2..N and print the Figure 5 table")
	plan    = flag.Bool("plan", false, "print the full channel plan")
	showMap = flag.Bool("map", false, "print the wavelength occupancy map and per-link loads")
	rings   = flag.Int("rings", 0, "split the plan across N physical fiber rings (0 = minimum)")
	seed    = flag.Int64("seed", 1, "random seed for the greedy heuristic")
)

func main() {
	flag.Parse()
	if *sweep > 0 {
		rows := experiments.Figure5(*sweep, *seed)
		fmt.Print(experiments.RenderFigure5(rows))
		return
	}
	if *m < 2 {
		fmt.Fprintln(os.Stderr, "wavelengths: ring size must be >= 2")
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	p := wdm.Greedy(*m, rng)
	opt := wdm.OptimalChannels(*m)
	fmt.Printf("ring size %d: greedy %d channels, optimal (ILP) %d, link-load bound %d\n",
		*m, p.Channels, opt, wdm.LowerBound(*m))

	numRings := *rings
	minRings := (p.Channels + wdm.CommodityMuxChannels - 1) / wdm.CommodityMuxChannels
	if numRings == 0 {
		numRings = minRings
	}
	split, err := wdm.SplitAcrossRings(p, numRings, wdm.CommodityMuxChannels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wavelengths: %v\n", err)
		os.Exit(1)
	}
	if err := split.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wavelengths: invalid plan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d physical fiber ring(s) of %d-channel muxes; max link load %d\n",
		split.Rings, wdm.CommodityMuxChannels, split.MaxLinkLoad())
	if p.Channels > wdm.MaxChannelsPerFiber {
		fmt.Printf("note: %d channels exceed a single %d-channel fiber\n",
			p.Channels, wdm.MaxChannelsPerFiber)
	}
	if *plan {
		fmt.Println("pair -> channel assignments:")
		for _, a := range split.Assignments {
			fmt.Printf("  s%-3d s%-3d  lambda %-4d %-4s ring %d\n", a.S, a.T, a.Channel, a.Dir, a.Ring)
		}
	}
	if *showMap {
		fmt.Print(split.RenderChannelMap())
	}
}
