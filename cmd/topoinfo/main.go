// Command topoinfo inspects the topologies the paper analyzes (§5,
// Table 9): switch counts, wiring complexity, path diversity, and
// zero-load latency, either for the standard ~1k-port comparison or for
// a custom full mesh.
//
// Usage:
//
//	topoinfo                 # Table 9 comparison
//	topoinfo -mesh M -hosts N  # properties of one Quartz mesh
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/experiments"
)

var (
	mesh  = flag.Int("mesh", 0, "inspect a Quartz mesh of this many switches instead of Table 9")
	hosts = flag.Int("hosts", 32, "hosts per switch for -mesh")
	seed  = flag.Int64("seed", 1, "random seed (Jellyfish row)")
	dot   = flag.Bool("dot", false, "emit the -mesh topology as Graphviz DOT instead of a summary")
)

func main() {
	flag.Parse()
	if *mesh > 0 {
		inspectMesh(*mesh, *hosts)
		return
	}
	rows, err := experiments.Table9(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderTable9(rows))
}

func inspectMesh(m, n int) {
	ring, err := core.NewRing(core.RingConfig{
		Switches: m, HostsPerSwitch: n, Rand: rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoinfo: %v\n", err)
		os.Exit(1)
	}
	g := ring.Graph
	if *dot {
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "topoinfo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(ring)
	fmt.Printf("  logical links:        %d\n", g.NumLinks()-len(g.Hosts()))
	fmt.Printf("  physical ring cables: %d\n", ring.WiringComplexity())
	fmt.Printf("  switch diameter:      %d hop\n", g.Diameter(g.Switches()))
	if len(g.Switches()) >= 2 {
		sw := g.Switches()
		fmt.Printf("  path diversity:       %d edge-disjoint paths\n",
			g.EdgeDisjointPaths(sw[0], sw[1]))
	}
	fmt.Printf("  amplifiers:           %d (every %d hops)\n",
		ring.Budget.Amplifiers*ring.Plan.Rings, ring.Budget.AmpAfterHops)
	fmt.Printf("  wavelengths:          %d on %d fiber ring(s); max link load %d\n",
		ring.Plan.Channels, ring.Plan.Rings, ring.Plan.MaxLinkLoad())
}
