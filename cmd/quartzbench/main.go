// Command quartzbench regenerates the tables and figures of the Quartz
// paper's evaluation (SIGCOMM 2014) and prints them as ASCII tables.
//
// Usage:
//
//	quartzbench [-run all|<name>] [-list] [-scenario FILE]
//	            [-seed N] [-trials N] [-tasks N] [-rpcs N] [-shards N]
//	            [-csv DIR] [-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//	            [-trace-spans FILE] [-flight-recorder]
//
// -scenario runs a declarative scenario document (SCENARIOS.md)
// instead of registry entries: the compiled experiment flows through
// the same timing, CSV-export, and -json report loop, with the
// parameters the document pins (the -seed/-trials/... flags do not
// apply).
//
// The experiment set comes from the experiments registry
// (experiments.All); -list prints it. Each experiment is deterministic
// for a given seed; -csv additionally writes the data-bearing
// experiments' rows as CSV files. -cpuprofile and -memprofile write
// pprof profiles covering the selected experiments — the instrument for
// the simulator's own hot paths (`go tool pprof` reads them).
// Interrupting the run (SIGINT/SIGTERM) cancels the in-flight
// experiment's context.
//
// -json writes a machine-readable run report: per-experiment wall time
// and simulator events/sec plus the run parameters and build
// environment. `make bench-json` uses it to regenerate
// BENCH_quartz.json, the repo's accumulating perf record. When a
// sharded engine ran, the report also carries a barrier_profile block
// (window counts, compute vs barrier-wait wall time).
//
// -trace-spans records execution spans — experiment build/run/cell
// phases down to sharded-engine barrier windows — and writes Chrome
// trace-event JSON for Perfetto (ui.perfetto.dev). -flight-recorder
// bounds the recorder to the most recent spans so a long run keeps a
// black box instead of an unbounded log.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/scenario"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// flightRecorderSpans bounds the -flight-recorder ring: enough for the
// last few thousand windows of a long run without unbounded memory.
const flightRecorderSpans = 4096

var (
	run        = flag.String("run", "all", "experiment to run: all, or a name from -list")
	list       = flag.Bool("list", false, "print the experiment registry and exit")
	scenarioIn = flag.String("scenario", "", "run a declarative scenario file (JSON or TOML, see SCENARIOS.md) instead of registry experiments")
	seed       = flag.Int64("seed", 2014, "random seed")
	trials     = flag.Int("trials", 5000, "Monte-Carlo trials (fig6)")
	tasks      = flag.Int("tasks", 8, "maximum concurrent tasks (fig17/fig18)")
	rpcs       = flag.Int("rpcs", 2000, "RPCs per point (fig14)")
	shardsN    = flag.Int("shards", 0, "pin the shard count of sharded-execution experiments (0 = the default 1/2/4/8 ladder)")
	csvDir     = flag.String("csv", "", "also write each experiment's rows as CSV files into this directory")
	jsonOut    = flag.String("json", "", "write a machine-readable run report (wall time, events/sec per experiment) to this file")
	traceSpans = flag.String("trace-spans", "", "record execution spans (experiment cells, sharded-engine windows) and write Chrome trace-event JSON to this file (open in Perfetto)")
	flightRec  = flag.Bool("flight-recorder", false, "bound the span recorder to the most recent spans (with -trace-spans): a black box for long runs")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
)

// exportCSV writes rows to <csvDir>/<name>.csv when -csv is set.
func exportCSV(name string, rows interface{}) error {
	if *csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, rows); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", f.Name())
	return nil
}

func printRegistry() {
	fmt.Printf("%-10s %-8s %s\n", "name", "section", "title")
	for _, e := range experiments.All() {
		fmt.Printf("%-10s %-8s %s\n", e.Name, e.Section, e.Title)
	}
}

func main() {
	flag.Parse()
	if *list {
		printRegistry()
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	params := experiments.Params{Seed: *seed, Trials: *trials, Tasks: *tasks, RPCs: *rpcs, Shards: *shardsN}

	which := strings.ToLower(*run)
	exps := experiments.All()
	if *scenarioIn != "" {
		f, err := scenario.Load(*scenarioIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(2)
		}
		c, err := scenario.Compile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(2)
		}
		// The document pins its own parameters and replaces the
		// registry selection; everything downstream is unchanged.
		exps = []experiments.Experiment{c.Experiment}
		params = c.Params.WithDefaults()
		which = "all"
	}

	var spans *trace.Recorder
	if *traceSpans != "" {
		if *flightRec {
			spans = trace.NewFlightRecorder(flightRecorderSpans)
		} else {
			spans = trace.NewRecorder()
		}
		params.Trace = spans
	}
	profileBefore := sim.BarrierProfileSnapshot()
	report := experiments.NewReport(params, time.Now())

	ran := false
	var peakHeap uint64
	for _, e := range exps {
		if which != "all" && which != e.Name {
			continue
		}
		ran = true
		fmt.Printf("==> %s\n", e.Title)
		eventsBefore := sim.TotalEvents()
		memBefore := experiments.CaptureMemStats()
		wallStart := time.Now()
		out, err := e.Run(ctx, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		wallSecs := time.Since(wallStart).Seconds()
		memAfter := experiments.CaptureMemStats()
		if memAfter.PeakHeapBytes > peakHeap {
			peakHeap = memAfter.PeakHeapBytes
		}
		report.Add(experiments.ExperimentReport{
			Name: e.Name, Title: e.Title, Section: e.Section,
			WallSecs:   wallSecs,
			Events:     sim.TotalEvents() - eventsBefore,
			AllocBytes: memAfter.TotalAllocBytes - memBefore.TotalAllocBytes,
			Mallocs:    memAfter.Mallocs - memBefore.Mallocs,
			CSVRows:    len(out.CSV),
		})
		fmt.Print(out.Text)
		names := make([]string, 0, len(out.CSV))
		for name := range out.CSV {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := exportCSV(name, out.CSV[name]); err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "quartzbench: unknown experiment %q\n", *run)
		printRegistry()
		os.Exit(2)
	}
	if profile := sim.BarrierProfileSnapshot().Sub(profileBefore); profile.Windows > 0 || profile.GlobalPhases > 0 {
		report.BarrierProfile = &profile
	}
	if spans != nil {
		f, err := os.Create(*traceSpans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		err = spans.WriteChrome(f, map[string]string{"tool": "quartzbench", "run": *run})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d execution spans to %s\n", spans.Len(), *traceSpans)
	}
	if *jsonOut != "" {
		mem := experiments.CaptureMemStats()
		if mem.PeakHeapBytes < peakHeap {
			mem.PeakHeapBytes = peakHeap
		}
		report.Mem = &mem
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote run report (%d experiments, %.1fs) to %s\n",
			len(report.Experiments), report.WallSecs, *jsonOut)
	}
}
