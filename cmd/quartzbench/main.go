// Command quartzbench regenerates the tables and figures of the Quartz
// paper's evaluation (SIGCOMM 2014) and prints them as ASCII tables.
//
// Usage:
//
//	quartzbench [-run all|fig1|fig5|fig6|fig10|fig14|fig14tcp|fig17|fig18|fig20|
//	                  table2|table8|table9|table16|validate|stack|fct|oversub|sched|prio|ablations]
//	            [-seed N] [-trials N] [-tasks N] [-rpcs N] [-csv DIR]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Each experiment is deterministic for a given seed; -csv additionally
// writes the data-bearing experiments' rows as CSV files. -cpuprofile
// and -memprofile write pprof profiles covering the selected
// experiments — the instrument for the simulator's own hot paths
// (`go tool pprof` reads them).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/quartz-dcn/quartz/internal/cost"
	"github.com/quartz-dcn/quartz/internal/experiments"
)

var (
	run        = flag.String("run", "all", "experiment to run: all, fig1, fig5, fig6, fig10, fig14, fig14tcp, fig17, fig18, fig20, table2, table8, table9, table16, stack, fct, oversub, ablations")
	seed       = flag.Int64("seed", 2014, "random seed")
	trials     = flag.Int("trials", 5000, "Monte-Carlo trials (fig6)")
	tasks      = flag.Int("tasks", 8, "maximum concurrent tasks (fig17/fig18)")
	rpcs       = flag.Int("rpcs", 2000, "RPCs per point (fig14)")
	csvDir     = flag.String("csv", "", "also write each experiment's rows as CSV files into this directory")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
)

// exportCSV writes rows to <csvDir>/<name>.csv when -csv is set.
func exportCSV(name string, rows interface{}) error {
	if *csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, rows); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", f.Name())
	return nil
}

func main() {
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			}
		}()
	}
	which := strings.ToLower(*run)
	ran := false
	for _, e := range experimentsList() {
		if which != "all" && which != e.name {
			continue
		}
		ran = true
		fmt.Printf("==> %s\n", e.title)
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "quartzbench: unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

type experiment struct {
	name  string
	title string
	fn    func() error
}

func experimentsList() []experiment {
	return []experiment{
		{"table2", "Table 2: network latency components", func() error {
			fmt.Print(table2)
			return nil
		}},
		{"fig5", "Figure 5: optimal wavelength assignment", func() error {
			rows := experiments.Figure5(41, *seed)
			fmt.Print(experiments.RenderFigure5(rows))
			return exportCSV("figure5", rows)
		}},
		{"fig6", "Figure 6: fault tolerance under fiber cuts", func() error {
			grid, err := experiments.Figure6(*trials, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure6(grid))
			return nil
		}},
		{"table8", "Table 8: cost and latency configurator", func() error {
			rows, err := experiments.Table8(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable8(rows))
			return exportCSV("table8", rows)
		}},
		{"table9", "Table 9: topology comparison at ~1k ports", func() error {
			rows, err := experiments.Table9(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable9(rows))
			return exportCSV("table9", rows)
		}},
		{"fig10", "Figure 10: normalized throughput", func() error {
			rows, err := experiments.Figure10(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure10(rows))
			return nil
		}},
		{"fig14", "Figure 14: prototype cross-traffic experiment", func() error {
			rows, err := experiments.Figure14Sweep(*seed, *rpcs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure14(rows))
			return exportCSV("figure14", rows)
		}},
		{"fig17", "Figure 17: global task latency", func() error {
			for _, kc := range []struct {
				kind  experiments.TaskKind
				n     int
				label string
			}{
				{experiments.ScatterKind, *tasks, "Figure 17(a): scatter"},
				{experiments.GatherKind, *tasks, "Figure 17(b): gather"},
				{experiments.ScatterGatherKind, min(*tasks, 4), "Figure 17(c): scatter/gather"},
			} {
				rows, err := experiments.Figure17(kc.kind, kc.n, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFigure17(kc.label, experiments.Figure17Architectures, rows))
				name := "figure17-" + strings.ReplaceAll(kc.kind.String(), "/", "-")
				if err := exportCSV(name, rows); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig18", "Figure 18: localized task latency", func() error {
			for _, kc := range []struct {
				kind  experiments.TaskKind
				n     int
				label string
			}{
				{experiments.ScatterKind, min(*tasks, 6), "Figure 18(a): localized scatter"},
				{experiments.GatherKind, min(*tasks, 6), "Figure 18(b): localized gather"},
				{experiments.ScatterGatherKind, min(*tasks, 5), "Figure 18(c): localized scatter/gather"},
			} {
				rows, err := experiments.Figure18(kc.kind, kc.n, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFigure17(kc.label, experiments.Figure18Architectures, rows))
			}
			return nil
		}},
		{"fig20", "Figure 20: pathological traffic pattern", func() error {
			rows, err := experiments.Figure20(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure20(rows))
			return exportCSV("figure20", rows)
		}},
		{"table16", "Table 16: simulated switch models", func() error {
			fmt.Print(table16)
			return nil
		}},
		{"fig14tcp", "Figure 14 (extension): bulk TCP cross-traffic", func() error {
			rows, err := experiments.Figure14TCP(*seed, *rpcs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure14TCP(rows))
			return nil
		}},
		{"oversub", "Oversubscription tradeoff (§3): n:k port split", func() error {
			rows, err := experiments.OversubscriptionSweep(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderOversub(rows))
			return nil
		}},
		{"stack", "Table 2 composition: order-of-magnitude stack walk", func() error {
			rows, err := experiments.StackComparison(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderStack(rows))
			return nil
		}},
		{"fig1", "Figure 1 extrapolation: Quartz premium vs WDM price decline", func() error {
			rows, err := cost.WDMCostTrend(12, 4)
			if err != nil {
				return err
			}
			fmt.Printf("%6s %12s %14s %14s\n", "year", "WDM price", "ring premium", "edge premium")
			for _, r := range rows {
				fmt.Printf("%6d %11.0f%% %13.1f%% %13.1f%%\n",
					2014+r.Year, 100*r.WDMPriceFactor, 100*r.RingPremium, 100*r.EdgePremium)
			}
			return nil
		}},
		{"fct", "Extension: short-flow completion times (topology x protocol)", func() error {
			rows, err := experiments.FlowCompletion(*seed, 150)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFCT(rows))
			return nil
		}},
		{"sched", "Extension: flow scheduling vs path diversity (§2.1.4)", func() error {
			rows, err := experiments.SchedulerComparison(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderScheduler(rows))
			return nil
		}},
		{"validate", "Simulator validation against queueing theory (§7)", func() error {
			rows, err := experiments.SimulatorValidation(*seed, 150_000)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderValidation(rows))
			return nil
		}},
		{"prio", "Extension: priority queueing vs topology (DeTail, §2.1.4)", func() error {
			rows, err := experiments.PriorityComparison(*seed, *rpcs)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderPriority(rows))
			return nil
		}},
		{"ablations", "Ablations: ring size, switch model, VLB fraction, ECMP mode", func() error {
			rs, err := experiments.AblationRingSize(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAblation("ring size", rs))
			sm, err := experiments.AblationSwitchModel(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAblation("switch model", sm))
			vf, err := experiments.AblationVLBFraction(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAblation("VLB fraction at 45 Gb/s", vf))
			em, err := experiments.AblationECMPMode(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAblation("ECMP mode", em))
			return nil
		}},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

const table2 = `Table 2: network latencies of different components
component          standard        state of the art
OS network stack   15 us           1 - 4 us
NIC                2.5 - 32 us     0.5 us
Switch             6 us            0.5 us (380 ns modelled)
Congestion         50 us           (workload dependent)
`

const table16 = `Table 16: switches used in the simulations
switch                    latency     ports
Cisco Nexus 7000 (CCS)    6 us        768 x 10G or 192 x 40G
Arista 7150S-64 (ULL)     380 ns      64 x 10G or 16 x 40G
`
