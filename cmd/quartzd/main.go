// Command quartzd serves Quartz experiments over HTTP: submit a job,
// poll its state, fetch the result. It fronts internal/service — a
// bounded submission queue with backpressure, a worker pool sized to
// the machine, and an LRU result cache keyed by the canonical
// parameter hash, so identical submissions never recompute.
//
// Usage:
//
//	quartzd [-addr :8714] [-queue N] [-workers N] [-cache N]
//	        [-scenarios N] [-timeout D] [-grace D]
//	        [-coordinator] [-cluster-workers URLS] [-join URL -advertise URL]
//
// Cluster mode (internal/cluster). A coordinator daemon
// (-coordinator, or implied by -cluster-workers with a comma-separated
// static worker list) shards sweep-shaped experiments across worker
// daemons and merges the partial results — byte-identical to a local
// run for every worker count — and serves two extra routes:
//
//	POST /cluster/register    a worker announces its base URL
//	GET  /cluster             the worker set: liveness, queue depth
//
// Workers are stock quartzd daemons; one started with
// -join http://coordinator:8714 -advertise http://me:8715 keeps
// announcing itself to the coordinator (idempotent, with backoff), so
// clusters can grow without restarting the coordinator.
//
// API (JSON):
//
//	POST   /jobs              {"experiment":"validate","params":{"seed":7,"trials":100}}
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job state + progress
//	GET    /jobs/{id}/result  output once terminal (409 before)
//	DELETE /jobs/{id}         cancel
//	PUT    /scenarios/{name}  store a declarative scenario document
//	GET    /scenarios         list stored scenarios (name, compiled identity, cache key)
//	GET    /scenarios/{name}  the stored document, byte for byte
//	DELETE /scenarios/{name}  remove a stored scenario
//	GET    /experiments       the experiment registry
//	GET    /metrics, /status  Prometheus text / JSON status
//	GET    /healthz           liveness
//
// POST /jobs also accepts a declarative scenario (SCENARIOS.md)
// instead of the envelope: a raw document (curl -d @file.json —
// recognized by its "schema": "quartz-scenario/v1" field; TOML works
// too), an inline {"scenario": {...}}, or a stored one by
// {"scenario_ref": "name"}. Scenarios that parameterize a registry
// experiment share its cache key, so a scenario submission and an
// envelope submission of the same work coalesce into one cache entry.
//
// A full queue answers 429 Too Many Requests with Retry-After; that is
// the backpressure contract — the daemon never buffers unboundedly.
// SIGINT/SIGTERM drain gracefully: admission stops (503), in-flight
// jobs get -grace to finish, then their contexts are cancelled, and
// the daemon exits 0 with a lifetime-stats line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/quartz-dcn/quartz/internal/cluster"
	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/service"
)

var (
	addr    = flag.String("addr", ":8714", "listen address")
	queue   = flag.Int("queue", 16, "submission queue capacity (full queue answers 429)")
	workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache   = flag.Int("cache", 256, "result cache entries (negative disables caching)")
	timeout = flag.Duration("timeout", 10*time.Minute, "default per-job run deadline")
	grace   = flag.Duration("grace", 30*time.Second, "drain grace period on shutdown before in-flight jobs are cancelled")
	scens   = flag.Int("scenarios", 128, "stored-scenario capacity (PUT /scenarios answers 507 when full)")

	coordinator = flag.Bool("coordinator", false, "serve as the cluster coordinator: fan sweep experiments out to workers and serve /cluster")
	clusterWkrs = flag.String("cluster-workers", "", "comma-separated worker base URLs for the coordinator (implies -coordinator)")
	join        = flag.String("join", "", "coordinator base URL to register this daemon with (worker mode)")
	advertise   = flag.String("advertise", "", "this daemon's reachable base URL, announced via -join")
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("quartzd ")
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := metrics.NewRegistry()
	mode := "single"
	var coord *cluster.Coordinator
	var lookup func(string) (experiments.Experiment, bool)
	if *coordinator || *clusterWkrs != "" {
		mode = "coordinator"
		var urls []string
		for _, u := range strings.Split(*clusterWkrs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord = cluster.New(cluster.Config{Workers: urls, Registry: reg})
		defer coord.Close()
		lookup = coord.WrapLookup(nil)
		log.Printf("coordinator mode: %d static workers", len(urls))
	}
	svc := service.New(service.Config{
		QueueCapacity:   *queue,
		Workers:         *workers,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		ScenarioEntries: *scens,
		Registry:        reg,
		Lookup:          lookup,
	})
	handler := http.Handler(svc.Handler(metrics.StatusMeta{
		"daemon":  "quartzd",
		"go":      runtime.Version(),
		"mode":    mode,
		"queue":   fmt.Sprint(*queue),
		"workers": fmt.Sprint(svcWorkers()),
	}))
	if coord != nil {
		mux := http.NewServeMux()
		ch := coord.Handler()
		mux.Handle("/cluster", ch)
		mux.Handle("/cluster/", ch)
		mux.Handle("/", handler)
		handler = mux
	}
	if *join != "" {
		if *advertise == "" {
			return errors.New("-join requires -advertise (this daemon's reachable base URL)")
		}
		rg := &cluster.Registrar{Coordinator: *join, Advertise: *advertise}
		go rg.Run(ctx)
		log.Printf("worker mode: announcing %s to %s", *advertise, *join)
	}

	// Bind before announcing readiness so callers (the CI smoke script
	// waits on this line) can poll the port immediately after.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: handler}
	log.Printf("listening on %s (queue=%d workers=%d cache=%d timeout=%v)",
		ln.Addr(), *queue, svcWorkers(), *cache, *timeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills immediately
	log.Printf("signal received; draining (grace %v)", *grace)

	// Drain first — stop admitting, let in-flight jobs finish or cancel
	// them at the grace deadline — then close the HTTP listener so
	// clients can poll job state for the whole drain window.
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	forced := svc.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}

	st := svc.Stats()
	log.Printf("drained: done=%d failed=%d cancelled=%d cache_hits=%d cache_misses=%d cache_entries=%d",
		st.Done, st.Failed, st.Cancelled, st.CacheHits, st.CacheMisses, st.CacheEntries)
	if forced != nil && errors.Is(forced, context.DeadlineExceeded) {
		log.Printf("grace period expired; in-flight jobs were cancelled")
	}
	return nil
}

// svcWorkers mirrors the service's worker-count default for logging.
func svcWorkers() int {
	if *workers > 0 {
		return *workers
	}
	return runtime.GOMAXPROCS(0)
}
