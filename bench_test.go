package quartz

import (
	"context"
	"fmt"
	"testing"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation; `go test -bench=. -benchmem` prints each experiment's
// rows once (on the first iteration) and reports the cost of
// regenerating it. cmd/quartzbench offers the same experiments with
// adjustable parameters.

const benchSeed = 2014 // SIGCOMM'14

// report prints an experiment's rendered table once per benchmark run.
func report(b *testing.B, i int, table string) {
	b.Helper()
	if i == 0 {
		fmt.Printf("\n%s\n", table)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure5(41, benchSeed)
		report(b, i, experiments.RenderFigure5(rows))
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Figure6(context.Background(), 2000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure6(grid))
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8(context.Background(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderTable8(rows))
	}
}

func BenchmarkTable9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table9(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderTable9(rows))
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(context.Background(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure10(rows))
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure14Sweep(benchSeed, 400)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure14(rows))
	}
}

func benchFigure17(b *testing.B, kind experiments.TaskKind, tasks int, panel string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure17(context.Background(), kind, tasks, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure17(panel, experiments.Figure17Architectures, rows))
	}
}

func BenchmarkFigure17Scatter(b *testing.B) {
	benchFigure17(b, experiments.ScatterKind, 8, "Figure 17(a): global scatter")
}

func BenchmarkFigure17Gather(b *testing.B) {
	benchFigure17(b, experiments.GatherKind, 8, "Figure 17(b): global gather")
}

func BenchmarkFigure17ScatterGather(b *testing.B) {
	benchFigure17(b, experiments.ScatterGatherKind, 4, "Figure 17(c): global scatter/gather")
}

func benchFigure18(b *testing.B, kind experiments.TaskKind, tasks int, panel string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure18(context.Background(), kind, tasks, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure17(panel, experiments.Figure18Architectures, rows))
	}
}

func BenchmarkFigure18Scatter(b *testing.B) {
	benchFigure18(b, experiments.ScatterKind, 6, "Figure 18(a): localized scatter")
}

func BenchmarkFigure18Gather(b *testing.B) {
	benchFigure18(b, experiments.GatherKind, 6, "Figure 18(b): localized gather")
}

func BenchmarkFigure18ScatterGather(b *testing.B) {
	benchFigure18(b, experiments.ScatterGatherKind, 5, "Figure 18(c): localized scatter/gather")
}

func BenchmarkFigure20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure20(context.Background(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure20(rows))
	}
}

// Ablations: the design choices behind the headline results.

func BenchmarkAblationRingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRingSize(context.Background(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderAblation("Ablation: ring size (§7: size does not affect performance)", rows))
	}
}

func BenchmarkAblationSwitchModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSwitchModel(context.Background(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderAblation("Ablation: cut-through vs store-and-forward mesh", rows))
	}
}

func BenchmarkAblationVLBFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationVLBFraction(context.Background(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderAblation("Ablation: VLB indirect fraction at 45 Gb/s pathological load", rows))
	}
}

func BenchmarkAblationECMPMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationECMPMode(context.Background(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderAblation("Ablation: per-flow vs per-packet ECMP on the tree", rows))
	}
}

func BenchmarkFigure14TCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure14TCP(benchSeed, 400)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFigure14TCP(rows))
	}
}

func BenchmarkOversubscription(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OversubscriptionSweep(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderOversub(rows))
	}
}

func BenchmarkFlowCompletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FlowCompletion(benchSeed, 150)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderFCT(rows))
	}
}

func BenchmarkStackComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StackComparison(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderStack(rows))
	}
}

func BenchmarkSchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SchedulerComparison(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderScheduler(rows))
	}
}

func BenchmarkPriorityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PriorityComparison(benchSeed, 400)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderPriority(rows))
	}
}

func BenchmarkSimulatorValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SimulatorValidation(context.Background(), benchSeed, 100_000, nil)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, experiments.RenderValidation(rows))
	}
}
