#!/usr/bin/env bash
# End-to-end smoke test of the quartzd job service, curl only (no jq):
# build the daemon, start it, submit a reduced-trials validate run,
# poll the job to completion, fetch and check the result, resubmit the
# identical request and require a cache hit (counter visible in
# /metrics), POST a raw scenario document and require its identical
# resubmission to coalesce in the cache, then SIGTERM the daemon and
# require a clean drain (exit 0).
# CI runs this as the service-smoke job; locally: make service-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${QUARTZD_PORT:-8714}"
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/quartzd"
LOG="$(mktemp)"
PID=""

fail() {
    echo "service_smoke: FAIL: $*" >&2
    echo "--- quartzd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -KILL "$PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# json_field BODY KEY → first scalar value of "key": in BODY (flat keys
# only; good enough for the fields asserted here).
json_field() {
    printf '%s' "$1" | tr -d '\n' |
        sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" |
        head -n1
}

echo "== build"
go build -o "$BIN" ./cmd/quartzd

echo "== start quartzd on :${PORT}"
"$BIN" -addr "127.0.0.1:${PORT}" -queue 4 -grace 30s >"$LOG" 2>&1 &
PID=$!

for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.2
    [[ $i -eq 50 ]] && fail "daemon never became healthy"
done

echo "== submit validate (reduced trials)"
SUBMIT=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d '{"experiment":"validate","params":{"seed":7,"trials":100}}')
JOB=$(json_field "$SUBMIT" id)
[[ -n "$JOB" ]] || fail "no job id in submit response: $SUBMIT"
echo "   job $JOB"

echo "== poll to completion"
STATE=""
for i in $(seq 1 150); do
    VIEW=$(curl -fsS "$BASE/jobs/$JOB")
    STATE=$(json_field "$VIEW" state)
    [[ "$STATE" == done || "$STATE" == failed || "$STATE" == cancelled ]] && break
    sleep 0.2
done
[[ "$STATE" == done ]] || fail "job ended as '$STATE': $VIEW"

echo "== fetch result"
RESULT=$(curl -fsS "$BASE/jobs/$JOB/result")
printf '%s' "$RESULT" | grep -q 'Simulator validation' ||
    fail "result body missing the validation table: $RESULT"

echo "== resubmit: must be a cache hit"
HITS_BEFORE=$(curl -fsS "$BASE/metrics" | awk '/^quartzd_cache_hits_total/ {print $2}')
AGAIN=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d '{"experiment":"validate","params":{"seed":7,"trials":100}}')
[[ "$(json_field "$AGAIN" cache_hit)" == true ]] || fail "resubmit not served from cache: $AGAIN"
[[ "$(json_field "$AGAIN" state)" == done ]] || fail "cached job not born done: $AGAIN"
HITS_AFTER=$(curl -fsS "$BASE/metrics" | awk '/^quartzd_cache_hits_total/ {print $2}')
[[ "${HITS_AFTER%.*}" -gt "${HITS_BEFORE%.*}" ]] ||
    fail "cache-hit counter did not increase ($HITS_BEFORE -> $HITS_AFTER)"

echo "== scenario: store it, submit the raw document, resubmit for a cache hit"
SCEN=examples/scenarios/figure6.json
curl -fsS -X PUT "$BASE/scenarios/figure6" --data-binary @"$SCEN" >/dev/null ||
    fail "PUT /scenarios/figure6 rejected $SCEN"
curl -fsS "$BASE/scenarios" | grep -q '"figure6"' || fail "stored scenario missing from GET /scenarios"

SC1=$(curl -fsS -X POST "$BASE/jobs" --data-binary @"$SCEN")
SCJOB=$(json_field "$SC1" id)
[[ -n "$SCJOB" ]] || fail "no job id for raw scenario submit: $SC1"
STATE=""
for i in $(seq 1 300); do
    VIEW=$(curl -fsS "$BASE/jobs/$SCJOB")
    STATE=$(json_field "$VIEW" state)
    [[ "$STATE" == done || "$STATE" == failed || "$STATE" == cancelled ]] && break
    sleep 0.2
done
[[ "$STATE" == done ]] || fail "scenario job ended as '$STATE': $VIEW"

SC2=$(curl -fsS -X POST "$BASE/jobs" --data-binary @"$SCEN")
[[ "$(json_field "$SC2" cache_hit)" == true ]] ||
    fail "identical scenario resubmission not served from cache: $SC2"
SC3=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d '{"scenario_ref":"figure6"}')
[[ "$(json_field "$SC3" cache_hit)" == true ]] ||
    fail "scenario_ref submission did not coalesce with the raw document: $SC3"

echo "== submit once more, then SIGTERM: daemon must drain cleanly"
curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d '{"experiment":"validate","params":{"seed":8,"trials":100}}' >/dev/null
kill -TERM "$PID"
WAITED=0
while kill -0 "$PID" 2>/dev/null; do
    sleep 0.5
    WAITED=$((WAITED + 1))
    [[ $WAITED -gt 120 ]] && fail "daemon did not exit within 60s of SIGTERM"
done
set +e
wait "$PID"
CODE=$?
set -e
PID=""
[[ $CODE -eq 0 ]] || fail "daemon exited $CODE after SIGTERM"
grep -q 'drained:' "$LOG" || fail "no drain summary in the daemon log"

echo "service_smoke: OK"
