#!/usr/bin/env bash
# End-to-end smoke test of distributed quartzd, curl only (no jq):
# build the daemon, start two plain workers and a coordinator wired to
# them on loopback, check GET /cluster sees both workers, submit a
# reduced-trials table8 sweep to the coordinator while an SSE
# subscription watches it, require the merged result to be
# byte-identical to the same experiment run single-process on a worker,
# require the identical resubmission to be a coordinator cache hit,
# then SIGTERM everything and require clean drains.
# CI runs this as the cluster-smoke step; locally: make cluster-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

P0="${QUARTZD_CLUSTER_PORT:-8740}" # coordinator
P1=$((P0 + 1))                     # worker 1
P2=$((P0 + 2))                     # worker 2
BASE="http://127.0.0.1:${P0}"
W1="http://127.0.0.1:${P1}"
W2="http://127.0.0.1:${P2}"
BIN="$(mktemp -d)/quartzd"
LOG0="$(mktemp)"; LOG1="$(mktemp)"; LOG2="$(mktemp)"
SSE="$(mktemp)"
PIDS=()

fail() {
    echo "cluster_smoke: FAIL: $*" >&2
    for log in "$LOG0" "$LOG1" "$LOG2"; do
        echo "--- log $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

json_field() {
    printf '%s' "$1" | tr -d '\n' |
        sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" |
        head -n1
}

wait_healthy() {
    local url=$1 pid=$2
    for i in $(seq 1 50); do
        curl -fsS "$url/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || fail "daemon $url exited during startup"
        sleep 0.2
    done
    fail "daemon $url never became healthy"
}

poll_done() {
    local base=$1 job=$2 state="" view=""
    for i in $(seq 1 300); do
        view=$(curl -fsS "$base/jobs/$job")
        state=$(json_field "$view" state)
        [[ "$state" == done || "$state" == failed || "$state" == cancelled ]] && break
        sleep 0.2
    done
    [[ "$state" == done ]] || fail "job $job on $base ended as '$state': $view"
}

# Result body with the job-specific fields neutralized, for
# byte-comparing outputs across daemons.
result_normalized() {
    curl -fsS "$1/jobs/$2/result" | sed 's/"id": *"[^"]*"/"id":"X"/'
}

REQ='{"experiment":"table8","params":{"seed":7,"trials":100}}'

echo "== build"
go build -o "$BIN" ./cmd/quartzd

echo "== start 2 workers + coordinator on loopback"
"$BIN" -addr "127.0.0.1:${P1}" -queue 8 >"$LOG1" 2>&1 &
PIDS+=($!); W1PID=$!
"$BIN" -addr "127.0.0.1:${P2}" -queue 8 >"$LOG2" 2>&1 &
PIDS+=($!); W2PID=$!
wait_healthy "$W1" "$W1PID"
wait_healthy "$W2" "$W2PID"
"$BIN" -addr "127.0.0.1:${P0}" -queue 8 -cluster-workers "$W1,$W2" >"$LOG0" 2>&1 &
PIDS+=($!); C0PID=$!
wait_healthy "$BASE" "$C0PID"

echo "== coordinator sees both workers"
CLUSTER=$(curl -fsS "$BASE/cluster")
printf '%s' "$CLUSTER" | grep -q "$W1" || fail "worker 1 missing from GET /cluster: $CLUSTER"
printf '%s' "$CLUSTER" | grep -q "$W2" || fail "worker 2 missing from GET /cluster: $CLUSTER"

echo "== single-process baseline on worker 1"
BASE1=$(curl -fsS -X POST "$W1/jobs" -H 'Content-Type: application/json' -d "$REQ")
BJOB=$(json_field "$BASE1" id)
[[ -n "$BJOB" ]] || fail "no job id from worker baseline submit: $BASE1"
poll_done "$W1" "$BJOB"

echo "== submit the sweep to the coordinator, SSE subscription attached"
SUBMIT=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' -d "$REQ")
JOB=$(json_field "$SUBMIT" id)
[[ -n "$JOB" ]] || fail "no job id from coordinator submit: $SUBMIT"
curl -fsSN --max-time 90 "$BASE/jobs/$JOB/events" >"$SSE" 2>/dev/null &
SSEPID=$!
poll_done "$BASE" "$JOB"
wait "$SSEPID" 2>/dev/null || true
grep -q '^event: state' "$SSE" || fail "no SSE state event arrived: $(cat "$SSE")"
grep -q '"state":"done"' "$SSE" || fail "SSE stream never reported the terminal state: $(cat "$SSE")"

echo "== cluster result must be byte-identical to the single-process run"
CR=$(result_normalized "$BASE" "$JOB")
BR=$(result_normalized "$W1" "$BJOB")
[[ "$CR" == "$BR" ]] || fail "cluster output differs from single-process output:
--- cluster ---
$CR
--- single ---
$BR"
printf '%s' "$CR" | grep -q 'Quartz' || fail "result does not look like table8 output: $CR"

echo "== workers actually executed cell ranges"
WMETRICS=$(curl -fsS "$W1/metrics"; curl -fsS "$W2/metrics")
WDONE=$(printf '%s\n' "$WMETRICS" | awk '/^quartzd_jobs_total{state="done"}/ {sum += $2} END {print sum + 0}')
[[ "${WDONE%.*}" -ge 2 ]] || fail "workers completed $WDONE jobs, want >= 2 (baseline + sub-jobs)"
DISPATCHES=$(curl -fsS "$BASE/metrics" | awk '/^quartzd_cluster_dispatches_total/ {print $2}')
[[ "${DISPATCHES%.*}" -ge 1 ]] || fail "coordinator dispatched nothing: $DISPATCHES"

echo "== resubmit to the coordinator: must be a cache hit"
AGAIN=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' -d "$REQ")
[[ "$(json_field "$AGAIN" cache_hit)" == true ]] || fail "resubmission not served from the coordinator cache: $AGAIN"

echo "== SIGTERM all three: clean drains"
for pid in "$C0PID" "$W1PID" "$W2PID"; do
    kill -TERM "$pid"
done
for pid in "$C0PID" "$W1PID" "$W2PID"; do
    WAITED=0
    while kill -0 "$pid" 2>/dev/null; do
        sleep 0.5
        WAITED=$((WAITED + 1))
        [[ $WAITED -gt 120 ]] && fail "daemon $pid did not exit within 60s of SIGTERM"
    done
    set +e
    wait "$pid"
    CODE=$?
    set -e
    [[ $CODE -eq 0 ]] || fail "daemon $pid exited $CODE after SIGTERM"
done
PIDS=()
grep -q 'drained:' "$LOG0" || fail "no drain summary in the coordinator log"

echo "cluster_smoke: OK"
