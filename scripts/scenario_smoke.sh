#!/usr/bin/env bash
# Validate every shipped scenario document: each file in
# examples/scenarios/ must parse, validate, and compile
# (quartzsim -scenario FILE -dry-run). CI runs this as the
# scenario-smoke step; locally: make scenario-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)/quartzsim"

echo "== build"
go build -o "$BIN" ./cmd/quartzsim

N=0
for f in examples/scenarios/*.json examples/scenarios/*.toml; do
    [[ -e "$f" ]] || continue
    N=$((N + 1))
    echo "== $f"
    "$BIN" -scenario "$f" -dry-run || {
        echo "scenario_smoke: FAIL: $f did not validate" >&2
        exit 1
    }
done

if [[ $N -lt 4 ]]; then
    echo "scenario_smoke: FAIL: only $N example scenarios found, want at least 4" >&2
    exit 1
fi

echo "scenario_smoke: OK ($N scenarios)"
