#!/usr/bin/env bash
# End-to-end smoke test of execution tracing, curl only (no jq):
# run a sharded quartzsim with -trace-spans and validate the Chrome
# trace with tracecheck (engine window/barrier spans, flow tracks,
# per-track timestamp order); run the sharded quartzbench experiment
# with -trace-spans -json and require a barrier_profile block in the
# report; then start quartzd, submit a job carrying an X-Quartz-Trace
# header, and require the header echoed and GET /jobs/{id}/trace to
# serve a valid trace containing the job lifecycle spans.
# CI runs this as the trace-smoke job; locally: make trace-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${QUARTZD_PORT:-8715}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
LOG="$TMP/quartzd.log"
PID=""

fail() {
    echo "trace_smoke: FAIL: $*" >&2
    if [[ -s "$LOG" ]]; then
        echo "--- quartzd log ---" >&2
        cat "$LOG" >&2 || true
    fi
    exit 1
}

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -KILL "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

# json_field BODY KEY → first scalar value of "key": in BODY.
json_field() {
    printf '%s' "$1" | tr -d '\n' |
        sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" |
        head -n1
}

echo "== build"
go build -o "$TMP/quartzsim" ./cmd/quartzsim
go build -o "$TMP/quartzbench" ./cmd/quartzbench
go build -o "$TMP/tracecheck" ./cmd/tracecheck
go build -o "$TMP/quartzd" ./cmd/quartzd

echo "== quartzsim -shards 4 -trace-spans"
"$TMP/quartzsim" -shards 4 -ms 2 -tasks 2 -trace-spans "$TMP/sim_spans.json" >/dev/null
"$TMP/tracecheck" -min-events 100 -require window,barrier,flow "$TMP/sim_spans.json" ||
    fail "quartzsim trace did not validate"

echo "== quartzsim -flight-recorder"
"$TMP/quartzsim" -shards 2 -ms 2 -tasks 1 -trace-spans "$TMP/ring_spans.json" -flight-recorder >/dev/null
"$TMP/tracecheck" -require window "$TMP/ring_spans.json" ||
    fail "flight-recorder trace did not validate"

echo "== quartzbench -run sharded -trace-spans -json"
"$TMP/quartzbench" -run sharded -tasks 1 -shards 2 \
    -trace-spans "$TMP/bench_spans.json" -json "$TMP/bench.json" >/dev/null
"$TMP/tracecheck" -require window,barrier,build,run "$TMP/bench_spans.json" ||
    fail "quartzbench trace did not validate"
grep -q '"barrier_profile"' "$TMP/bench.json" ||
    fail "no barrier_profile block in the -json report"
grep -q '"num_cpu"' "$TMP/bench.json" ||
    fail "no num_cpu in the -json report"

echo "== start quartzd on :${PORT}"
"$TMP/quartzd" -addr "127.0.0.1:${PORT}" -queue 4 -grace 30s >"$LOG" 2>&1 &
PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.2
    [[ $i -eq 50 ]] && fail "daemon never became healthy"
done

echo "== submit with X-Quartz-Trace header"
HDRS="$TMP/headers.txt"
SUBMIT=$(curl -fsS -D "$HDRS" -X POST "$BASE/jobs" \
    -H 'Content-Type: application/json' -H 'X-Quartz-Trace: smoke-trace-1' \
    -d '{"experiment":"validate","params":{"seed":7,"trials":100}}')
JOB=$(json_field "$SUBMIT" id)
[[ -n "$JOB" ]] || fail "no job id in submit response: $SUBMIT"
grep -iq '^x-quartz-trace: smoke-trace-1' "$HDRS" ||
    fail "submit response did not echo X-Quartz-Trace"
TRACE_ID=$(json_field "$SUBMIT" trace_id)
[[ "$TRACE_ID" == "smoke-trace-1" ]] || fail "trace_id=$TRACE_ID, want smoke-trace-1"

echo "== poll $JOB to completion"
for i in $(seq 1 100); do
    STATE=$(json_field "$(curl -fsS "$BASE/jobs/$JOB")" state)
    [[ "$STATE" == "done" ]] && break
    [[ "$STATE" == "failed" || "$STATE" == "cancelled" ]] && fail "job went $STATE"
    sleep 0.2
    [[ $i -eq 100 ]] && fail "job never finished (state $STATE)"
done

echo "== GET /jobs/$JOB/trace"
curl -fsS -D "$HDRS" "$BASE/jobs/$JOB/trace" -o "$TMP/job_trace.json" ||
    fail "trace endpoint errored"
grep -iq '^x-quartz-trace: smoke-trace-1' "$HDRS" ||
    fail "trace response did not echo X-Quartz-Trace"
"$TMP/tracecheck" -require queued,run "$TMP/job_trace.json" ||
    fail "job trace did not validate"
grep -q '"trace_id":"smoke-trace-1"' "$TMP/job_trace.json" ||
    fail "trace otherData missing the trace id"

echo "== drain"
kill -TERM "$PID"
for i in $(seq 1 50); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.2
    [[ $i -eq 50 ]] && fail "daemon did not drain after SIGTERM"
done
wait "$PID" 2>/dev/null || true
PID=""

echo "trace_smoke: OK"
